exception Unknown_instruction of int

let check_u16 what v =
  if v < 0 || v > 0xffff then
    invalid_arg (Printf.sprintf "Word.encode: %s immediate out of range: %d" what v)

let check_s16 what v =
  if v < -0x8000 || v > 0x7fff then
    invalid_arg (Printf.sprintf "Word.encode: %s immediate out of range: %d" what v)

let check_shamt v =
  if v < 0 || v > 31 then invalid_arg "Word.encode: shift amount out of range"

let check_target v =
  if v < 0 || v >= 1 lsl 26 then invalid_arg "Word.encode: jump target out of range"

let s16 v = v land 0xffff

let r_type ~op ~rs ~rt ~rd ~shamt ~funct =
  (op lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor (rd lsl 11)
  lor (shamt lsl 6) lor funct

let i_type ~op ~rs ~rt ~imm = (op lsl 26) lor (rs lsl 21) lor (rt lsl 16) lor imm

let encode insn =
  let g = Reg.to_int and f = Reg.f_to_int in
  let alu funct d s t =
    r_type ~op:0 ~rs:(g s) ~rt:(g t) ~rd:(g d) ~shamt:0 ~funct
  in
  let shift funct d t sa =
    check_shamt sa;
    r_type ~op:0 ~rs:0 ~rt:(g t) ~rd:(g d) ~shamt:sa ~funct
  in
  let shiftv funct d t s =
    r_type ~op:0 ~rs:(g s) ~rt:(g t) ~rd:(g d) ~shamt:0 ~funct
  in
  let imm_s op t s v =
    check_s16 "signed" v;
    i_type ~op ~rs:(g s) ~rt:(g t) ~imm:(s16 v)
  in
  let imm_u op t s v =
    check_u16 "unsigned" v;
    i_type ~op ~rs:(g s) ~rt:(g t) ~imm:v
  in
  let mem op t off base =
    check_s16 "offset" off;
    i_type ~op ~rs:(g base) ~rt:(g t) ~imm:(s16 off)
  in
  let branch2 op s t off =
    check_s16 "branch offset" off;
    i_type ~op ~rs:(g s) ~rt:(g t) ~imm:(s16 off)
  in
  let branch1 op rt s off =
    check_s16 "branch offset" off;
    i_type ~op ~rs:(g s) ~rt ~imm:(s16 off)
  in
  (* COP1 arithmetic, single fmt = 0x10 in the rs field. *)
  let fp3 funct fd fs ft =
    r_type ~op:0x11 ~rs:0x10 ~rt:(f ft) ~rd:(f fs) ~shamt:(f fd) ~funct
  in
  let fp2 funct fd fs = fp3 funct fd fs (Reg.f_of_int 0) in
  let fpcmp funct fs ft =
    r_type ~op:0x11 ~rs:0x10 ~rt:(f ft) ~rd:(f fs) ~shamt:0 ~funct
  in
  match insn with
  | Insn.Add (d, s, t) -> alu 0x20 d s t
  | Insn.Addu (d, s, t) -> alu 0x21 d s t
  | Insn.Sub (d, s, t) -> alu 0x22 d s t
  | Insn.Subu (d, s, t) -> alu 0x23 d s t
  | Insn.And (d, s, t) -> alu 0x24 d s t
  | Insn.Or (d, s, t) -> alu 0x25 d s t
  | Insn.Xor (d, s, t) -> alu 0x26 d s t
  | Insn.Nor (d, s, t) -> alu 0x27 d s t
  | Insn.Slt (d, s, t) -> alu 0x2a d s t
  | Insn.Sltu (d, s, t) -> alu 0x2b d s t
  | Insn.Sll (d, t, sa) -> shift 0x00 d t sa
  | Insn.Srl (d, t, sa) -> shift 0x02 d t sa
  | Insn.Sra (d, t, sa) -> shift 0x03 d t sa
  | Insn.Sllv (d, t, s) -> shiftv 0x04 d t s
  | Insn.Srlv (d, t, s) -> shiftv 0x06 d t s
  | Insn.Srav (d, t, s) -> shiftv 0x07 d t s
  | Insn.Mult (s, t) -> r_type ~op:0 ~rs:(g s) ~rt:(g t) ~rd:0 ~shamt:0 ~funct:0x18
  | Insn.Div (s, t) -> r_type ~op:0 ~rs:(g s) ~rt:(g t) ~rd:0 ~shamt:0 ~funct:0x1a
  | Insn.Mfhi d -> r_type ~op:0 ~rs:0 ~rt:0 ~rd:(g d) ~shamt:0 ~funct:0x10
  | Insn.Mflo d -> r_type ~op:0 ~rs:0 ~rt:0 ~rd:(g d) ~shamt:0 ~funct:0x12
  | Insn.Addi (t, s, v) -> imm_s 0x08 t s v
  | Insn.Addiu (t, s, v) -> imm_s 0x09 t s v
  | Insn.Slti (t, s, v) -> imm_s 0x0a t s v
  | Insn.Andi (t, s, v) -> imm_u 0x0c t s v
  | Insn.Ori (t, s, v) -> imm_u 0x0d t s v
  | Insn.Xori (t, s, v) -> imm_u 0x0e t s v
  | Insn.Lui (t, v) ->
      check_u16 "lui" v;
      i_type ~op:0x0f ~rs:0 ~rt:(g t) ~imm:v
  | Insn.Lw (t, off, base) -> mem 0x23 t off base
  | Insn.Sw (t, off, base) -> mem 0x2b t off base
  | Insn.Lb (t, off, base) -> mem 0x20 t off base
  | Insn.Sb (t, off, base) -> mem 0x28 t off base
  | Insn.Beq (s, t, off) -> branch2 0x04 s t off
  | Insn.Bne (s, t, off) -> branch2 0x05 s t off
  | Insn.Blez (s, off) -> branch1 0x06 0 s off
  | Insn.Bgtz (s, off) -> branch1 0x07 0 s off
  | Insn.Bltz (s, off) -> branch1 0x01 0 s off
  | Insn.Bgez (s, off) -> branch1 0x01 1 s off
  | Insn.J target ->
      check_target target;
      (0x02 lsl 26) lor target
  | Insn.Jal target ->
      check_target target;
      (0x03 lsl 26) lor target
  | Insn.Jr s -> r_type ~op:0 ~rs:(g s) ~rt:0 ~rd:0 ~shamt:0 ~funct:0x08
  | Insn.Jalr (d, s) -> r_type ~op:0 ~rs:(g s) ~rt:0 ~rd:(g d) ~shamt:0 ~funct:0x09
  | Insn.Lwc1 (t, off, base) ->
      check_s16 "offset" off;
      i_type ~op:0x31 ~rs:(Reg.to_int base) ~rt:(f t) ~imm:(s16 off)
  | Insn.Swc1 (t, off, base) ->
      check_s16 "offset" off;
      i_type ~op:0x39 ~rs:(Reg.to_int base) ~rt:(f t) ~imm:(s16 off)
  | Insn.Mfc1 (t, fs) -> r_type ~op:0x11 ~rs:0x00 ~rt:(g t) ~rd:(f fs) ~shamt:0 ~funct:0
  | Insn.Mtc1 (t, fs) -> r_type ~op:0x11 ~rs:0x04 ~rt:(g t) ~rd:(f fs) ~shamt:0 ~funct:0
  | Insn.Add_s (d, s, t) -> fp3 0x00 d s t
  | Insn.Sub_s (d, s, t) -> fp3 0x01 d s t
  | Insn.Mul_s (d, s, t) -> fp3 0x02 d s t
  | Insn.Div_s (d, s, t) -> fp3 0x03 d s t
  | Insn.Sqrt_s (d, s) -> fp2 0x04 d s
  | Insn.Abs_s (d, s) -> fp2 0x05 d s
  | Insn.Mov_s (d, s) -> fp2 0x06 d s
  | Insn.Neg_s (d, s) -> fp2 0x07 d s
  | Insn.Cvt_w_s (d, s) -> fp2 0x24 d s
  | Insn.Cvt_s_w (d, s) ->
      (* word fmt = 0x14 in the rs field *)
      r_type ~op:0x11 ~rs:0x14 ~rt:0 ~rd:(f s) ~shamt:(f d) ~funct:0x20
  | Insn.C_eq_s (s, t) -> fpcmp 0x32 s t
  | Insn.C_lt_s (s, t) -> fpcmp 0x3c s t
  | Insn.C_le_s (s, t) -> fpcmp 0x3e s t
  | Insn.Bc1t off ->
      check_s16 "branch offset" off;
      i_type ~op:0x11 ~rs:0x08 ~rt:1 ~imm:(s16 off)
  | Insn.Bc1f off ->
      check_s16 "branch offset" off;
      i_type ~op:0x11 ~rs:0x08 ~rt:0 ~imm:(s16 off)
  | Insn.Syscall -> 0x0000000c
  | Insn.Nop -> 0

let decode w =
  if w < 0 || w > 0xffffffff then invalid_arg "Word.decode: not a 32-bit word";
  if w = 0 then Insn.Nop
  else
    let op = w lsr 26 land 0x3f in
    let rs = w lsr 21 land 0x1f in
    let rt = w lsr 16 land 0x1f in
    let rd = w lsr 11 land 0x1f in
    let shamt = w lsr 6 land 0x1f in
    let funct = w land 0x3f in
    let imm_u = w land 0xffff in
    let imm_s = if imm_u >= 0x8000 then imm_u - 0x10000 else imm_u in
    let g = Reg.of_int and f = Reg.f_of_int in
    match op with
    | 0x00 -> (
        match funct with
        | 0x00 -> Insn.Sll (g rd, g rt, shamt)
        | 0x02 -> Insn.Srl (g rd, g rt, shamt)
        | 0x03 -> Insn.Sra (g rd, g rt, shamt)
        | 0x04 -> Insn.Sllv (g rd, g rt, g rs)
        | 0x06 -> Insn.Srlv (g rd, g rt, g rs)
        | 0x07 -> Insn.Srav (g rd, g rt, g rs)
        | 0x08 -> Insn.Jr (g rs)
        | 0x09 -> Insn.Jalr (g rd, g rs)
        | 0x0c -> Insn.Syscall
        | 0x10 -> Insn.Mfhi (g rd)
        | 0x12 -> Insn.Mflo (g rd)
        | 0x18 -> Insn.Mult (g rs, g rt)
        | 0x1a -> Insn.Div (g rs, g rt)
        | 0x20 -> Insn.Add (g rd, g rs, g rt)
        | 0x21 -> Insn.Addu (g rd, g rs, g rt)
        | 0x22 -> Insn.Sub (g rd, g rs, g rt)
        | 0x23 -> Insn.Subu (g rd, g rs, g rt)
        | 0x24 -> Insn.And (g rd, g rs, g rt)
        | 0x25 -> Insn.Or (g rd, g rs, g rt)
        | 0x26 -> Insn.Xor (g rd, g rs, g rt)
        | 0x27 -> Insn.Nor (g rd, g rs, g rt)
        | 0x2a -> Insn.Slt (g rd, g rs, g rt)
        | 0x2b -> Insn.Sltu (g rd, g rs, g rt)
        | _ -> raise (Unknown_instruction w))
    | 0x01 -> (
        match rt with
        | 0 -> Insn.Bltz (g rs, imm_s)
        | 1 -> Insn.Bgez (g rs, imm_s)
        | _ -> raise (Unknown_instruction w))
    | 0x02 -> Insn.J (w land 0x3ffffff)
    | 0x03 -> Insn.Jal (w land 0x3ffffff)
    | 0x04 -> Insn.Beq (g rs, g rt, imm_s)
    | 0x05 -> Insn.Bne (g rs, g rt, imm_s)
    | 0x06 -> Insn.Blez (g rs, imm_s)
    | 0x07 -> Insn.Bgtz (g rs, imm_s)
    | 0x08 -> Insn.Addi (g rt, g rs, imm_s)
    | 0x09 -> Insn.Addiu (g rt, g rs, imm_s)
    | 0x0a -> Insn.Slti (g rt, g rs, imm_s)
    | 0x0c -> Insn.Andi (g rt, g rs, imm_u)
    | 0x0d -> Insn.Ori (g rt, g rs, imm_u)
    | 0x0e -> Insn.Xori (g rt, g rs, imm_u)
    | 0x0f -> Insn.Lui (g rt, imm_u)
    | 0x20 -> Insn.Lb (g rt, imm_s, g rs)
    | 0x23 -> Insn.Lw (g rt, imm_s, g rs)
    | 0x28 -> Insn.Sb (g rt, imm_s, g rs)
    | 0x2b -> Insn.Sw (g rt, imm_s, g rs)
    | 0x31 -> Insn.Lwc1 (f rt, imm_s, g rs)
    | 0x39 -> Insn.Swc1 (f rt, imm_s, g rs)
    | 0x11 -> (
        match rs with
        | 0x00 -> Insn.Mfc1 (g rt, f rd)
        | 0x04 -> Insn.Mtc1 (g rt, f rd)
        | 0x08 -> if rt = 1 then Insn.Bc1t imm_s else Insn.Bc1f imm_s
        | 0x10 -> (
            match funct with
            | 0x00 -> Insn.Add_s (f shamt, f rd, f rt)
            | 0x01 -> Insn.Sub_s (f shamt, f rd, f rt)
            | 0x02 -> Insn.Mul_s (f shamt, f rd, f rt)
            | 0x03 -> Insn.Div_s (f shamt, f rd, f rt)
            | 0x04 -> Insn.Sqrt_s (f shamt, f rd)
            | 0x05 -> Insn.Abs_s (f shamt, f rd)
            | 0x06 -> Insn.Mov_s (f shamt, f rd)
            | 0x07 -> Insn.Neg_s (f shamt, f rd)
            | 0x24 -> Insn.Cvt_w_s (f shamt, f rd)
            | 0x32 -> Insn.C_eq_s (f rd, f rt)
            | 0x3c -> Insn.C_lt_s (f rd, f rt)
            | 0x3e -> Insn.C_le_s (f rd, f rt)
            | _ -> raise (Unknown_instruction w))
        | 0x14 ->
            if funct = 0x20 then Insn.Cvt_s_w (f shamt, f rd)
            else raise (Unknown_instruction w)
        | _ -> raise (Unknown_instruction w))
    | _ -> raise (Unknown_instruction w)

let encode_program insns = Array.map encode insns
let decode_program words = Array.map decode words
