(** Symbolic instruction streams: instructions whose control-flow targets
    are labels, as produced by the assembler front-end and the Minic code
    generator, before offsets are resolved. *)

type item =
  | Label of string  (** defines a label at the next instruction *)
  | Op of Insn.t  (** an already-resolved instruction *)
  | Beq_l of Reg.t * Reg.t * string
  | Bne_l of Reg.t * Reg.t * string
  | Blez_l of Reg.t * string
  | Bgtz_l of Reg.t * string
  | Bltz_l of Reg.t * string
  | Bgez_l of Reg.t * string
  | Bc1t_l of string
  | Bc1f_l of string
  | J_l of string
  | Jal_l of string

exception Undefined_label of string
exception Duplicate_label of string

(** [resolve items] indexes the labels and rewrites every symbolic control
    transfer to a numeric one: branches get word offsets relative to the
    following instruction, jumps get absolute word indices.
    Raises {!Undefined_label} or {!Duplicate_label}. *)
val resolve : item list -> Insn.t array * (string * int) list

(** [instruction_count items] is the number of instructions (labels are
    markers and occupy no slot). *)
val instruction_count : item list -> int
