exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

(* --- tokenizing one line ------------------------------------------------ *)

let strip_comment s =
  let cut =
    match (String.index_opt s '#', String.index_opt s ';') with
    | Some a, Some b -> Some (min a b)
    | Some a, None -> Some a
    | None, Some b -> Some b
    | None, None -> None
  in
  match cut with Some i -> String.sub s 0 i | None -> s

let split_operands s =
  s |> String.split_on_char ',' |> List.map String.trim
  |> List.filter (fun x -> x <> "")

(* --- operand parsing ---------------------------------------------------- *)

type operand =
  | Oreg of Reg.t
  | Ofreg of Reg.f
  | Oint of int
  | Omem of int * Reg.t  (* offset(base) *)
  | Oname of string

let parse_operand line s =
  let is_int s = match int_of_string_opt s with Some _ -> true | None -> false in
  if String.length s = 0 then fail line "empty operand"
  else if String.contains s '(' then begin
    match String.index_opt s ')' with
    | None -> fail line ("missing ) in operand " ^ s)
    | Some close ->
        let open_ = String.index s '(' in
        let off_str = String.trim (String.sub s 0 open_) in
        let base_str = String.sub s (open_ + 1) (close - open_ - 1) in
        let off =
          if off_str = "" then 0
          else
            match int_of_string_opt off_str with
            | Some v -> v
            | None -> fail line ("bad offset " ^ off_str)
        in
        Omem (off, Reg.of_name (String.trim base_str))
  end
  else if s.[0] = '$' then
    if String.length s > 1 && s.[1] = 'f' && not (is_int (String.sub s 1 (String.length s - 1))) then
      Ofreg (Reg.f_of_name s)
    else Oreg (Reg.of_name s)
  else if is_int s then Oint (int_of_string s)
  else Oname s

(* --- instruction parsing ------------------------------------------------ *)

let reg line = function Oreg r -> r | _ -> fail line "expected register"
let freg line = function Ofreg r -> r | _ -> fail line "expected FP register"
let int_ line = function Oint v -> v | _ -> fail line "expected integer"
let name line = function
  | Oname n -> n
  | _ -> fail line "expected label name"

let mem line = function
  | Omem (off, base) -> (off, base)
  | _ -> fail line "expected offset(base) operand"

let expand_li rd v =
  if v >= -0x8000 && v <= 0x7fff then [ Sym.Op (Insn.Addiu (rd, Reg.zero, v)) ]
  else if v >= 0 && v <= 0xffff then [ Sym.Op (Insn.Ori (rd, Reg.zero, v)) ]
  else begin
    let v32 = v land 0xffffffff in
    let hi = v32 lsr 16 land 0xffff in
    let lo = v32 land 0xffff in
    if lo = 0 then [ Sym.Op (Insn.Lui (rd, hi)) ]
    else [ Sym.Op (Insn.Lui (rd, hi)); Sym.Op (Insn.Ori (rd, rd, lo)) ]
  end

let parse_instruction line mnemonic ops =
  let op1 () = match ops with [ a ] -> a | _ -> fail line "expected 1 operand" in
  let op2 () =
    match ops with a :: b :: [] -> (a, b) | _ -> fail line "expected 2 operands"
  in
  let op3 () =
    match ops with
    | [ a; b; c ] -> (a, b, c)
    | _ -> fail line "expected 3 operands"
  in
  let r = reg line and f = freg line and i = int_ line and n = name line in
  let alu3 mk =
    let a, b, c = op3 () in
    [ Sym.Op (mk (r a) (r b) (r c)) ]
  in
  let shift mk =
    let a, b, c = op3 () in
    [ Sym.Op (mk (r a) (r b) (i c)) ]
  in
  let immi mk =
    let a, b, c = op3 () in
    [ Sym.Op (mk (r a) (r b) (i c)) ]
  in
  let load mk =
    let a, b = op2 () in
    let off, base = mem line b in
    [ Sym.Op (mk (r a) off base) ]
  in
  let fload mk =
    let a, b = op2 () in
    let off, base = mem line b in
    [ Sym.Op (mk (f a) off base) ]
  in
  let fp3 mk =
    let a, b, c = op3 () in
    [ Sym.Op (mk (f a) (f b) (f c)) ]
  in
  let fp2 mk =
    let a, b = op2 () in
    [ Sym.Op (mk (f a) (f b)) ]
  in
  let branch2 mk =
    let a, b, c = op3 () in
    [ mk (r a) (r b) (n c) ]
  in
  let branch1 mk =
    let a, b = op2 () in
    [ mk (r a) (n b) ]
  in
  match mnemonic with
  | "add" -> alu3 (fun d s t -> Insn.Add (d, s, t))
  | "addu" -> alu3 (fun d s t -> Insn.Addu (d, s, t))
  | "sub" -> alu3 (fun d s t -> Insn.Sub (d, s, t))
  | "subu" -> alu3 (fun d s t -> Insn.Subu (d, s, t))
  | "and" -> alu3 (fun d s t -> Insn.And (d, s, t))
  | "or" -> alu3 (fun d s t -> Insn.Or (d, s, t))
  | "xor" -> alu3 (fun d s t -> Insn.Xor (d, s, t))
  | "nor" -> alu3 (fun d s t -> Insn.Nor (d, s, t))
  | "slt" -> alu3 (fun d s t -> Insn.Slt (d, s, t))
  | "sltu" -> alu3 (fun d s t -> Insn.Sltu (d, s, t))
  | "sllv" -> alu3 (fun d t s -> Insn.Sllv (d, t, s))
  | "srlv" -> alu3 (fun d t s -> Insn.Srlv (d, t, s))
  | "srav" -> alu3 (fun d t s -> Insn.Srav (d, t, s))
  | "sll" -> shift (fun d t sa -> Insn.Sll (d, t, sa))
  | "srl" -> shift (fun d t sa -> Insn.Srl (d, t, sa))
  | "sra" -> shift (fun d t sa -> Insn.Sra (d, t, sa))
  | "mult" ->
      let a, b = op2 () in
      [ Sym.Op (Insn.Mult (r a, r b)) ]
  | "div" ->
      let a, b = op2 () in
      [ Sym.Op (Insn.Div (r a, r b)) ]
  | "mfhi" -> [ Sym.Op (Insn.Mfhi (r (op1 ()))) ]
  | "mflo" -> [ Sym.Op (Insn.Mflo (r (op1 ()))) ]
  | "addi" -> immi (fun t s v -> Insn.Addi (t, s, v))
  | "addiu" -> immi (fun t s v -> Insn.Addiu (t, s, v))
  | "slti" -> immi (fun t s v -> Insn.Slti (t, s, v))
  | "andi" -> immi (fun t s v -> Insn.Andi (t, s, v))
  | "ori" -> immi (fun t s v -> Insn.Ori (t, s, v))
  | "xori" -> immi (fun t s v -> Insn.Xori (t, s, v))
  | "lui" ->
      let a, b = op2 () in
      [ Sym.Op (Insn.Lui (r a, i b)) ]
  | "lw" -> load (fun t off base -> Insn.Lw (t, off, base))
  | "sw" -> load (fun t off base -> Insn.Sw (t, off, base))
  | "lb" -> load (fun t off base -> Insn.Lb (t, off, base))
  | "sb" -> load (fun t off base -> Insn.Sb (t, off, base))
  | "lwc1" -> fload (fun t off base -> Insn.Lwc1 (t, off, base))
  | "swc1" -> fload (fun t off base -> Insn.Swc1 (t, off, base))
  | "mtc1" ->
      let a, b = op2 () in
      [ Sym.Op (Insn.Mtc1 (r a, f b)) ]
  | "mfc1" ->
      let a, b = op2 () in
      [ Sym.Op (Insn.Mfc1 (r a, f b)) ]
  | "add.s" -> fp3 (fun d s t -> Insn.Add_s (d, s, t))
  | "sub.s" -> fp3 (fun d s t -> Insn.Sub_s (d, s, t))
  | "mul.s" -> fp3 (fun d s t -> Insn.Mul_s (d, s, t))
  | "div.s" -> fp3 (fun d s t -> Insn.Div_s (d, s, t))
  | "abs.s" -> fp2 (fun d s -> Insn.Abs_s (d, s))
  | "neg.s" -> fp2 (fun d s -> Insn.Neg_s (d, s))
  | "mov.s" -> fp2 (fun d s -> Insn.Mov_s (d, s))
  | "sqrt.s" -> fp2 (fun d s -> Insn.Sqrt_s (d, s))
  | "cvt.s.w" -> fp2 (fun d s -> Insn.Cvt_s_w (d, s))
  | "cvt.w.s" -> fp2 (fun d s -> Insn.Cvt_w_s (d, s))
  | "c.eq.s" -> fp2 (fun s t -> Insn.C_eq_s (s, t))
  | "c.lt.s" -> fp2 (fun s t -> Insn.C_lt_s (s, t))
  | "c.le.s" -> fp2 (fun s t -> Insn.C_le_s (s, t))
  | "bc1t" -> [ Sym.Bc1t_l (n (op1 ())) ]
  | "bc1f" -> [ Sym.Bc1f_l (n (op1 ())) ]
  | "beq" -> branch2 (fun s t l -> Sym.Beq_l (s, t, l))
  | "bne" -> branch2 (fun s t l -> Sym.Bne_l (s, t, l))
  | "blez" -> branch1 (fun s l -> Sym.Blez_l (s, l))
  | "bgtz" -> branch1 (fun s l -> Sym.Bgtz_l (s, l))
  | "bltz" -> branch1 (fun s l -> Sym.Bltz_l (s, l))
  | "bgez" -> branch1 (fun s l -> Sym.Bgez_l (s, l))
  | "j" -> [ Sym.J_l (n (op1 ())) ]
  | "jal" -> [ Sym.Jal_l (n (op1 ())) ]
  | "jr" -> [ Sym.Op (Insn.Jr (r (op1 ()))) ]
  | "jalr" ->
      let a, b = op2 () in
      [ Sym.Op (Insn.Jalr (r a, r b)) ]
  | "syscall" -> [ Sym.Op Insn.Syscall ]
  | "nop" -> [ Sym.Op Insn.Nop ]
  (* pseudo-instructions *)
  | "li" | "la" ->
      let a, b = op2 () in
      expand_li (r a) (i b)
  | "move" ->
      let a, b = op2 () in
      [ Sym.Op (Insn.Addu (r a, r b, Reg.zero)) ]
  | "neg" ->
      let a, b = op2 () in
      [ Sym.Op (Insn.Subu (r a, Reg.zero, r b)) ]
  | "not" ->
      let a, b = op2 () in
      [ Sym.Op (Insn.Nor (r a, r b, Reg.zero)) ]
  | "b" -> [ Sym.Beq_l (Reg.zero, Reg.zero, n (op1 ())) ]
  | "blt" ->
      let a, b, c = op3 () in
      [ Sym.Op (Insn.Slt (Reg.at, r a, r b)); Sym.Bne_l (Reg.at, Reg.zero, n c) ]
  | "bge" ->
      let a, b, c = op3 () in
      [ Sym.Op (Insn.Slt (Reg.at, r a, r b)); Sym.Beq_l (Reg.at, Reg.zero, n c) ]
  | "bgt" ->
      let a, b, c = op3 () in
      [ Sym.Op (Insn.Slt (Reg.at, r b, r a)); Sym.Bne_l (Reg.at, Reg.zero, n c) ]
  | "ble" ->
      let a, b, c = op3 () in
      [ Sym.Op (Insn.Slt (Reg.at, r b, r a)); Sym.Beq_l (Reg.at, Reg.zero, n c) ]
  | "seq" ->
      let a, b, c = op3 () in
      [
        Sym.Op (Insn.Xor (r a, r b, r c));
        Sym.Op (Insn.Sltu (r a, Reg.zero, r a));
        Sym.Op (Insn.Xori (r a, r a, 1));
      ]
  | "sne" ->
      let a, b, c = op3 () in
      [
        Sym.Op (Insn.Xor (r a, r b, r c));
        Sym.Op (Insn.Sltu (r a, Reg.zero, r a));
      ]
  | _ -> fail line ("unknown mnemonic " ^ mnemonic)

let parse source =
  let items = ref [] in
  let push xs = items := List.rev_append xs !items in
  let lines = String.split_on_char '\n' source in
  List.iteri
    (fun lineno0 raw ->
      let lineno = lineno0 + 1 in
      let rec process text =
        let text = String.trim (strip_comment text) in
        if text <> "" then
          match String.index_opt text ':' with
          | Some colon
            when (not (String.contains text ' '))
                 || colon < String.index text ' ' ->
              let label = String.trim (String.sub text 0 colon) in
              if label = "" then fail lineno "empty label";
              push [ Sym.Label label ];
              process (String.sub text (colon + 1) (String.length text - colon - 1))
          | Some _ | None -> (
              match String.index_opt text ' ' with
              | None -> push (parse_instruction lineno text [])
              | Some sp ->
                  let mnemonic = String.sub text 0 sp in
                  let rest =
                    String.sub text (sp + 1) (String.length text - sp - 1)
                  in
                  let ops = List.map (parse_operand lineno) (split_operands rest) in
                  push (parse_instruction lineno mnemonic ops))
      in
      try process raw with
      | Invalid_argument msg -> fail lineno msg)
    lines;
  List.rev !items

let assemble source = Program.of_items (parse source)
