(** General-purpose and floating-point register names.

    The integer register file follows the MIPS o32 convention; register 0 is
    hard-wired to zero.  Floating-point registers live in a separate 32-entry
    file accessed through coprocessor-1 instructions. *)

type t
(** An integer register, [0..31]. *)

type f
(** A floating-point register, [0..31]. *)

(** [of_int n] is register [n].  Raises [Invalid_argument] outside 0..31. *)
val of_int : int -> t

(** [to_int r] is the register number. *)
val to_int : t -> int

(** [of_name s] parses ["$t0"], ["$4"], ["t0"] forms.
    Raises [Invalid_argument] on unknown names. *)
val of_name : string -> t

(** [name r] is the conventional name, e.g. ["$t0"]. *)
val name : t -> string

(** Conventional registers. *)

val zero : t
val at : t
val v0 : t
val v1 : t
val a0 : t
val a1 : t
val a2 : t
val a3 : t
val t0 : t
val t1 : t
val t2 : t
val t3 : t
val t4 : t
val t5 : t
val t6 : t
val t7 : t
val t8 : t
val t9 : t
val s0 : t
val s1 : t
val s2 : t
val s3 : t
val s4 : t
val s5 : t
val s6 : t
val s7 : t
val gp : t
val sp : t
val fp : t
val ra : t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

(** Floating-point registers. *)

(** [f_of_int n] is FP register [n].  Raises outside 0..31. *)
val f_of_int : int -> f

val f_to_int : f -> int

(** [f_of_name s] parses ["$f5"] or ["f5"]. *)
val f_of_name : string -> f

(** [f_name r] is e.g. ["$f5"]. *)
val f_name : f -> string

val f_equal : f -> f -> bool
val pp_f : Format.formatter -> f -> unit
