(** The instruction set: a MIPS-I-like 32-bit RISC with a single-precision
    floating-point coprocessor, standing in for SimpleScalar's PISA.

    Control transfers are fully resolved: branch instructions carry a signed
    {e word} offset relative to the instruction after the branch; jumps
    carry an absolute {e word} index.  The machine has no delay slots.

    Field order conventions mirror assembly syntax: for three-register
    instructions the destination comes first. *)

type t =
  (* arithmetic / logic, register *)
  | Add of Reg.t * Reg.t * Reg.t  (** rd, rs, rt (trapping add not modeled) *)
  | Addu of Reg.t * Reg.t * Reg.t
  | Sub of Reg.t * Reg.t * Reg.t
  | Subu of Reg.t * Reg.t * Reg.t
  | And of Reg.t * Reg.t * Reg.t
  | Or of Reg.t * Reg.t * Reg.t
  | Xor of Reg.t * Reg.t * Reg.t
  | Nor of Reg.t * Reg.t * Reg.t
  | Slt of Reg.t * Reg.t * Reg.t
  | Sltu of Reg.t * Reg.t * Reg.t
  (* shifts *)
  | Sll of Reg.t * Reg.t * int  (** rd, rt, shamt 0..31 *)
  | Srl of Reg.t * Reg.t * int
  | Sra of Reg.t * Reg.t * int
  | Sllv of Reg.t * Reg.t * Reg.t  (** rd, rt, rs *)
  | Srlv of Reg.t * Reg.t * Reg.t
  | Srav of Reg.t * Reg.t * Reg.t
  (* multiply / divide *)
  | Mult of Reg.t * Reg.t
  | Div of Reg.t * Reg.t
  | Mfhi of Reg.t
  | Mflo of Reg.t
  (* arithmetic / logic, immediate *)
  | Addi of Reg.t * Reg.t * int  (** rt, rs, signed 16-bit *)
  | Addiu of Reg.t * Reg.t * int
  | Slti of Reg.t * Reg.t * int
  | Andi of Reg.t * Reg.t * int  (** rt, rs, unsigned 16-bit *)
  | Ori of Reg.t * Reg.t * int
  | Xori of Reg.t * Reg.t * int
  | Lui of Reg.t * int  (** rt, unsigned 16-bit *)
  (* memory *)
  | Lw of Reg.t * int * Reg.t  (** rt, offset, base *)
  | Sw of Reg.t * int * Reg.t
  | Lb of Reg.t * int * Reg.t
  | Sb of Reg.t * int * Reg.t
  (* control *)
  | Beq of Reg.t * Reg.t * int  (** rs, rt, word offset from next pc *)
  | Bne of Reg.t * Reg.t * int
  | Blez of Reg.t * int
  | Bgtz of Reg.t * int
  | Bltz of Reg.t * int
  | Bgez of Reg.t * int
  | J of int  (** absolute word index *)
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t  (** rd, rs *)
  (* floating point, single precision *)
  | Lwc1 of Reg.f * int * Reg.t
  | Swc1 of Reg.f * int * Reg.t
  | Mtc1 of Reg.t * Reg.f  (** rt, fs: GPR bits into FPR *)
  | Mfc1 of Reg.t * Reg.f
  | Add_s of Reg.f * Reg.f * Reg.f  (** fd, fs, ft *)
  | Sub_s of Reg.f * Reg.f * Reg.f
  | Mul_s of Reg.f * Reg.f * Reg.f
  | Div_s of Reg.f * Reg.f * Reg.f
  | Abs_s of Reg.f * Reg.f
  | Neg_s of Reg.f * Reg.f
  | Mov_s of Reg.f * Reg.f
  | Sqrt_s of Reg.f * Reg.f
  | Cvt_s_w of Reg.f * Reg.f  (** fd, fs: int bits -> float *)
  | Cvt_w_s of Reg.f * Reg.f  (** fd, fs: float -> int bits (truncate) *)
  | C_eq_s of Reg.f * Reg.f  (** sets the FP condition flag *)
  | C_lt_s of Reg.f * Reg.f
  | C_le_s of Reg.f * Reg.f
  | Bc1t of int  (** word offset from next pc *)
  | Bc1f of int
  (* system *)
  | Syscall
  | Nop

(** [equal] is structural equality. *)
val equal : t -> t -> bool

(** [is_branch i] holds for conditional branches (relative targets). *)
val is_branch : t -> bool

(** [is_jump i] holds for J/Jal/Jr/Jalr. *)
val is_jump : t -> bool

(** [is_control i] is [is_branch i || is_jump i || i = Syscall]. *)
val is_control : t -> bool

(** [branch_offset i] is the word offset of a conditional branch. *)
val branch_offset : t -> int option

(** [jump_target i] is the absolute target of [J]/[Jal]. *)
val jump_target : t -> int option

(** [pp] prints assembly syntax, with control targets shown numerically. *)
val pp : Format.formatter -> t -> unit

val to_string : t -> string
