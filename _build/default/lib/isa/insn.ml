type t =
  | Add of Reg.t * Reg.t * Reg.t
  | Addu of Reg.t * Reg.t * Reg.t
  | Sub of Reg.t * Reg.t * Reg.t
  | Subu of Reg.t * Reg.t * Reg.t
  | And of Reg.t * Reg.t * Reg.t
  | Or of Reg.t * Reg.t * Reg.t
  | Xor of Reg.t * Reg.t * Reg.t
  | Nor of Reg.t * Reg.t * Reg.t
  | Slt of Reg.t * Reg.t * Reg.t
  | Sltu of Reg.t * Reg.t * Reg.t
  | Sll of Reg.t * Reg.t * int
  | Srl of Reg.t * Reg.t * int
  | Sra of Reg.t * Reg.t * int
  | Sllv of Reg.t * Reg.t * Reg.t
  | Srlv of Reg.t * Reg.t * Reg.t
  | Srav of Reg.t * Reg.t * Reg.t
  | Mult of Reg.t * Reg.t
  | Div of Reg.t * Reg.t
  | Mfhi of Reg.t
  | Mflo of Reg.t
  | Addi of Reg.t * Reg.t * int
  | Addiu of Reg.t * Reg.t * int
  | Slti of Reg.t * Reg.t * int
  | Andi of Reg.t * Reg.t * int
  | Ori of Reg.t * Reg.t * int
  | Xori of Reg.t * Reg.t * int
  | Lui of Reg.t * int
  | Lw of Reg.t * int * Reg.t
  | Sw of Reg.t * int * Reg.t
  | Lb of Reg.t * int * Reg.t
  | Sb of Reg.t * int * Reg.t
  | Beq of Reg.t * Reg.t * int
  | Bne of Reg.t * Reg.t * int
  | Blez of Reg.t * int
  | Bgtz of Reg.t * int
  | Bltz of Reg.t * int
  | Bgez of Reg.t * int
  | J of int
  | Jal of int
  | Jr of Reg.t
  | Jalr of Reg.t * Reg.t
  | Lwc1 of Reg.f * int * Reg.t
  | Swc1 of Reg.f * int * Reg.t
  | Mtc1 of Reg.t * Reg.f
  | Mfc1 of Reg.t * Reg.f
  | Add_s of Reg.f * Reg.f * Reg.f
  | Sub_s of Reg.f * Reg.f * Reg.f
  | Mul_s of Reg.f * Reg.f * Reg.f
  | Div_s of Reg.f * Reg.f * Reg.f
  | Abs_s of Reg.f * Reg.f
  | Neg_s of Reg.f * Reg.f
  | Mov_s of Reg.f * Reg.f
  | Sqrt_s of Reg.f * Reg.f
  | Cvt_s_w of Reg.f * Reg.f
  | Cvt_w_s of Reg.f * Reg.f
  | C_eq_s of Reg.f * Reg.f
  | C_lt_s of Reg.f * Reg.f
  | C_le_s of Reg.f * Reg.f
  | Bc1t of int
  | Bc1f of int
  | Syscall
  | Nop

let equal = Stdlib.( = )

let is_branch = function
  | Beq _ | Bne _ | Blez _ | Bgtz _ | Bltz _ | Bgez _ | Bc1t _ | Bc1f _ ->
      true
  | Add _ | Addu _ | Sub _ | Subu _ | And _ | Or _ | Xor _ | Nor _ | Slt _
  | Sltu _ | Sll _ | Srl _ | Sra _ | Sllv _ | Srlv _ | Srav _ | Mult _
  | Div _ | Mfhi _ | Mflo _ | Addi _ | Addiu _ | Slti _ | Andi _ | Ori _
  | Xori _ | Lui _ | Lw _ | Sw _ | Lb _ | Sb _ | J _ | Jal _ | Jr _ | Jalr _
  | Lwc1 _ | Swc1 _ | Mtc1 _ | Mfc1 _ | Add_s _ | Sub_s _ | Mul_s _
  | Div_s _ | Abs_s _ | Neg_s _ | Mov_s _ | Sqrt_s _ | Cvt_s_w _ | Cvt_w_s _
  | C_eq_s _ | C_lt_s _ | C_le_s _ | Syscall | Nop ->
      false

let is_jump = function
  | J _ | Jal _ | Jr _ | Jalr _ -> true
  | _ -> false

let is_control i = is_branch i || is_jump i || i = Syscall

let branch_offset = function
  | Beq (_, _, off) | Bne (_, _, off) -> Some off
  | Blez (_, off) | Bgtz (_, off) | Bltz (_, off) | Bgez (_, off) -> Some off
  | Bc1t off | Bc1f off -> Some off
  | _ -> None

let jump_target = function J t | Jal t -> Some t | _ -> None

let pp fmt i =
  let r = Reg.name and f = Reg.f_name in
  let p = Format.fprintf in
  match i with
  | Add (d, s, t) -> p fmt "add %s, %s, %s" (r d) (r s) (r t)
  | Addu (d, s, t) -> p fmt "addu %s, %s, %s" (r d) (r s) (r t)
  | Sub (d, s, t) -> p fmt "sub %s, %s, %s" (r d) (r s) (r t)
  | Subu (d, s, t) -> p fmt "subu %s, %s, %s" (r d) (r s) (r t)
  | And (d, s, t) -> p fmt "and %s, %s, %s" (r d) (r s) (r t)
  | Or (d, s, t) -> p fmt "or %s, %s, %s" (r d) (r s) (r t)
  | Xor (d, s, t) -> p fmt "xor %s, %s, %s" (r d) (r s) (r t)
  | Nor (d, s, t) -> p fmt "nor %s, %s, %s" (r d) (r s) (r t)
  | Slt (d, s, t) -> p fmt "slt %s, %s, %s" (r d) (r s) (r t)
  | Sltu (d, s, t) -> p fmt "sltu %s, %s, %s" (r d) (r s) (r t)
  | Sll (d, t, sa) -> p fmt "sll %s, %s, %d" (r d) (r t) sa
  | Srl (d, t, sa) -> p fmt "srl %s, %s, %d" (r d) (r t) sa
  | Sra (d, t, sa) -> p fmt "sra %s, %s, %d" (r d) (r t) sa
  | Sllv (d, t, s) -> p fmt "sllv %s, %s, %s" (r d) (r t) (r s)
  | Srlv (d, t, s) -> p fmt "srlv %s, %s, %s" (r d) (r t) (r s)
  | Srav (d, t, s) -> p fmt "srav %s, %s, %s" (r d) (r t) (r s)
  | Mult (s, t) -> p fmt "mult %s, %s" (r s) (r t)
  | Div (s, t) -> p fmt "div %s, %s" (r s) (r t)
  | Mfhi d -> p fmt "mfhi %s" (r d)
  | Mflo d -> p fmt "mflo %s" (r d)
  | Addi (t, s, imm) -> p fmt "addi %s, %s, %d" (r t) (r s) imm
  | Addiu (t, s, imm) -> p fmt "addiu %s, %s, %d" (r t) (r s) imm
  | Slti (t, s, imm) -> p fmt "slti %s, %s, %d" (r t) (r s) imm
  | Andi (t, s, imm) -> p fmt "andi %s, %s, %d" (r t) (r s) imm
  | Ori (t, s, imm) -> p fmt "ori %s, %s, %d" (r t) (r s) imm
  | Xori (t, s, imm) -> p fmt "xori %s, %s, %d" (r t) (r s) imm
  | Lui (t, imm) -> p fmt "lui %s, %d" (r t) imm
  | Lw (t, off, base) -> p fmt "lw %s, %d(%s)" (r t) off (r base)
  | Sw (t, off, base) -> p fmt "sw %s, %d(%s)" (r t) off (r base)
  | Lb (t, off, base) -> p fmt "lb %s, %d(%s)" (r t) off (r base)
  | Sb (t, off, base) -> p fmt "sb %s, %d(%s)" (r t) off (r base)
  | Beq (s, t, off) -> p fmt "beq %s, %s, %d" (r s) (r t) off
  | Bne (s, t, off) -> p fmt "bne %s, %s, %d" (r s) (r t) off
  | Blez (s, off) -> p fmt "blez %s, %d" (r s) off
  | Bgtz (s, off) -> p fmt "bgtz %s, %d" (r s) off
  | Bltz (s, off) -> p fmt "bltz %s, %d" (r s) off
  | Bgez (s, off) -> p fmt "bgez %s, %d" (r s) off
  | J t -> p fmt "j %d" t
  | Jal t -> p fmt "jal %d" t
  | Jr s -> p fmt "jr %s" (r s)
  | Jalr (d, s) -> p fmt "jalr %s, %s" (r d) (r s)
  | Lwc1 (ft, off, base) -> p fmt "lwc1 %s, %d(%s)" (f ft) off (r base)
  | Swc1 (ft, off, base) -> p fmt "swc1 %s, %d(%s)" (f ft) off (r base)
  | Mtc1 (t, fs) -> p fmt "mtc1 %s, %s" (r t) (f fs)
  | Mfc1 (t, fs) -> p fmt "mfc1 %s, %s" (r t) (f fs)
  | Add_s (d, s, t) -> p fmt "add.s %s, %s, %s" (f d) (f s) (f t)
  | Sub_s (d, s, t) -> p fmt "sub.s %s, %s, %s" (f d) (f s) (f t)
  | Mul_s (d, s, t) -> p fmt "mul.s %s, %s, %s" (f d) (f s) (f t)
  | Div_s (d, s, t) -> p fmt "div.s %s, %s, %s" (f d) (f s) (f t)
  | Abs_s (d, s) -> p fmt "abs.s %s, %s" (f d) (f s)
  | Neg_s (d, s) -> p fmt "neg.s %s, %s" (f d) (f s)
  | Mov_s (d, s) -> p fmt "mov.s %s, %s" (f d) (f s)
  | Sqrt_s (d, s) -> p fmt "sqrt.s %s, %s" (f d) (f s)
  | Cvt_s_w (d, s) -> p fmt "cvt.s.w %s, %s" (f d) (f s)
  | Cvt_w_s (d, s) -> p fmt "cvt.w.s %s, %s" (f d) (f s)
  | C_eq_s (s, t) -> p fmt "c.eq.s %s, %s" (f s) (f t)
  | C_lt_s (s, t) -> p fmt "c.lt.s %s, %s" (f s) (f t)
  | C_le_s (s, t) -> p fmt "c.le.s %s, %s" (f s) (f t)
  | Bc1t off -> p fmt "bc1t %d" off
  | Bc1f off -> p fmt "bc1f %d" off
  | Syscall -> p fmt "syscall"
  | Nop -> p fmt "nop"

let to_string i = Format.asprintf "%a" pp i
