(** Disassembly back to assemblable source.

    Reconstructs symbolic labels at every control-flow target so that the
    emitted text round-trips: [Asm.assemble (to_source p)] produces the same
    binary words as [p].  Known labels from the program are preferred;
    synthetic ones are ["L<index>"]. *)

(** [to_source p] is assembler text for the whole program. *)
val to_source : Program.t -> string

(** [line p index] is the rendered instruction at [index] with its target
    shown symbolically (no label definitions). *)
val line : Program.t -> int -> string
