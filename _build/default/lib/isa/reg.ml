type t = int
type f = int

let names =
  [|
    "$zero"; "$at"; "$v0"; "$v1"; "$a0"; "$a1"; "$a2"; "$a3";
    "$t0"; "$t1"; "$t2"; "$t3"; "$t4"; "$t5"; "$t6"; "$t7";
    "$s0"; "$s1"; "$s2"; "$s3"; "$s4"; "$s5"; "$s6"; "$s7";
    "$t8"; "$t9"; "$k0"; "$k1"; "$gp"; "$sp"; "$fp"; "$ra";
  |]

let of_int n =
  if n < 0 || n > 31 then invalid_arg "Reg.of_int: not in 0..31";
  n

let to_int r = r
let name r = names.(r)

let strip_dollar s =
  if String.length s > 0 && s.[0] = '$' then String.sub s 1 (String.length s - 1)
  else s

let of_name s =
  let bare = strip_dollar s in
  let canonical = "$" ^ bare in
  let found = ref (-1) in
  Array.iteri (fun i n -> if n = canonical then found := i) names;
  if !found >= 0 then !found
  else
    match int_of_string_opt bare with
    | Some n when n >= 0 && n <= 31 -> n
    | Some _ | None -> invalid_arg ("Reg.of_name: unknown register " ^ s)

let zero = 0
let at = 1
let v0 = 2
let v1 = 3
let a0 = 4
let a1 = 5
let a2 = 6
let a3 = 7
let t0 = 8
let t1 = 9
let t2 = 10
let t3 = 11
let t4 = 12
let t5 = 13
let t6 = 14
let t7 = 15
let s0 = 16
let s1 = 17
let s2 = 18
let s3 = 19
let s4 = 20
let s5 = 21
let s6 = 22
let s7 = 23
let t8 = 24
let t9 = 25
let gp = 28
let sp = 29
let fp = 30
let ra = 31

let equal = Int.equal
let compare = Int.compare
let pp fmt r = Format.pp_print_string fmt (name r)

let f_of_int n =
  if n < 0 || n > 31 then invalid_arg "Reg.f_of_int: not in 0..31";
  n

let f_to_int r = r
let f_name r = Printf.sprintf "$f%d" r

let f_of_name s =
  let bare = strip_dollar s in
  if String.length bare >= 2 && bare.[0] = 'f' then
    match int_of_string_opt (String.sub bare 1 (String.length bare - 1)) with
    | Some n when n >= 0 && n <= 31 -> n
    | Some _ | None -> invalid_arg ("Reg.f_of_name: unknown register " ^ s)
  else invalid_arg ("Reg.f_of_name: unknown register " ^ s)

let f_equal = Int.equal
let pp_f fmt r = Format.pp_print_string fmt (f_name r)
