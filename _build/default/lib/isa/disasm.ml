let target_of insns i =
  let insn = insns.(i) in
  match Insn.branch_offset insn with
  | Some off -> Some (i + 1 + off)
  | None -> Insn.jump_target insn

(* label name per target index: prefer the program's own labels *)
let label_map p =
  let insns = Program.insns p in
  let names = Hashtbl.create 16 in
  List.iter (fun (name, i) -> Hashtbl.replace names i name) (Program.labels p);
  Array.iteri
    (fun i _ ->
      match target_of insns i with
      | Some t when not (Hashtbl.mem names t) ->
          Hashtbl.replace names t (Printf.sprintf "L%d" t)
      | Some _ | None -> ())
    insns;
  names

let render names insns i =
  let insn = insns.(i) in
  let label t =
    match Hashtbl.find_opt names t with
    | Some name -> name
    | None -> Printf.sprintf "L%d" t
  in
  let r = Reg.name in
  match insn with
  | Insn.Beq (s, t, off) ->
      Printf.sprintf "beq %s, %s, %s" (r s) (r t) (label (i + 1 + off))
  | Insn.Bne (s, t, off) ->
      Printf.sprintf "bne %s, %s, %s" (r s) (r t) (label (i + 1 + off))
  | Insn.Blez (s, off) -> Printf.sprintf "blez %s, %s" (r s) (label (i + 1 + off))
  | Insn.Bgtz (s, off) -> Printf.sprintf "bgtz %s, %s" (r s) (label (i + 1 + off))
  | Insn.Bltz (s, off) -> Printf.sprintf "bltz %s, %s" (r s) (label (i + 1 + off))
  | Insn.Bgez (s, off) -> Printf.sprintf "bgez %s, %s" (r s) (label (i + 1 + off))
  | Insn.Bc1t off -> Printf.sprintf "bc1t %s" (label (i + 1 + off))
  | Insn.Bc1f off -> Printf.sprintf "bc1f %s" (label (i + 1 + off))
  | Insn.J t -> Printf.sprintf "j %s" (label t)
  | Insn.Jal t -> Printf.sprintf "jal %s" (label t)
  | other -> Insn.to_string other

let line p index =
  let insns = Program.insns p in
  if index < 0 || index >= Array.length insns then
    invalid_arg "Disasm.line: index out of range";
  render (label_map p) insns index

let to_source p =
  let insns = Program.insns p in
  let names = label_map p in
  let buffer = Buffer.create 1024 in
  Array.iteri
    (fun i _ ->
      (match Hashtbl.find_opt names i with
      | Some name -> Buffer.add_string buffer (name ^ ":\n")
      | None -> ());
      Buffer.add_string buffer ("  " ^ render names insns i ^ "\n"))
    insns;
  (* a branch may target one past the last instruction *)
  (match Hashtbl.find_opt names (Array.length insns) with
  | Some name -> Buffer.add_string buffer (name ^ ":\n")
  | None -> ());
  Buffer.contents buffer
