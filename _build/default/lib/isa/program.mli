(** An assembled program: the instruction image plus its label map.

    Instruction addresses are {e word indices} (instruction 0, 1, 2, …);
    the machine multiplies by 4 nowhere — the bus carries one 32-bit
    instruction word per fetch, which is all the power analysis needs. *)

type t

(** [of_items items] resolves a symbolic stream into a program. *)
val of_items : Sym.item list -> t

(** [of_insns insns] wraps already-resolved instructions. *)
val of_insns : Insn.t array -> t

(** [insns p] is the instruction array (not copied; treat as read-only). *)
val insns : t -> Insn.t array

(** [words p] is the binary image, one encoded word per instruction
    (computed once at construction). *)
val words : t -> int array

(** [length p] is the number of instructions. *)
val length : t -> int

(** [labels p] is the label map sorted by address. *)
val labels : t -> (string * int) list

(** [label_at p index] is the first label defined at [index], if any. *)
val label_at : t -> int -> string option

(** [address_of p name] is the label's word index.
    Raises [Not_found] if undefined. *)
val address_of : t -> string -> int

(** [pp] prints a disassembly listing with labels and addresses. *)
val pp : Format.formatter -> t -> unit
