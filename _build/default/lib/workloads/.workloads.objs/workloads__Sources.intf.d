lib/workloads/sources.mli:
