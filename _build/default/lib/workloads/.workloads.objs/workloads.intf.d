lib/workloads/workloads.mli: Minic
