lib/workloads/workloads.ml: List Minic Sources
