lib/workloads/sources.ml: Printf
