(** Minic sources for the paper's six benchmark kernels, parameterised by
    problem size so the test suite can run scaled-down instances while the
    benchmark harness uses the paper's sizes. *)

(** [mmul ~n] — dense matrix multiplication of two [n x n] float matrices
    (paper: 100 x 100). *)
val mmul : n:int -> string

(** [sor ~n ~iters] — successive over-relaxation sweeps on an [n x n] grid
    (paper: 256 x 256). *)
val sor : n:int -> iters:int -> string

(** [ej ~n ~iters] — extrapolated Jacobi iteration on an [n x n] grid
    (paper: 128 x 128). *)
val ej : n:int -> iters:int -> string

(** [fft ~n] — iterative radix-2 FFT over [n] complex samples, twiddles from
    polynomial sin/cos (paper: 256 samples).  [n] must be a power of two. *)
val fft : n:int -> string

(** [tri ~n ~systems] — Thomas-algorithm tridiagonal solver of size [n],
    applied to [systems] right-hand sides (paper: size 128 x 128). *)
val tri : n:int -> systems:int -> string

(** [lu ~n] — in-place Doolittle LU decomposition of an [n x n] matrix
    (paper: 128 x 128). *)
val lu : n:int -> string

(** Extension workloads beyond the paper's six, from the same embedded-DSP
    domain its introduction motivates. *)

(** [fir ~taps ~samples] — direct-form FIR filter. *)
val fir : taps:int -> samples:int -> string

(** [iir ~sections ~samples] — cascade of biquad IIR sections. *)
val iir : sections:int -> samples:int -> string

(** [dct ~blocks] — 8x8 two-pass DCT (JPEG style) over [blocks] image
    blocks, cosine table built with a polynomial approximation. *)
val dct : blocks:int -> string
