type t = { name : string; description : string; source : string }

let make name description source = { name; description; source }

let paper_sized =
  [
    make "mmul" "matrix multiplication, 100x100 floats"
      (Sources.mmul ~n:100);
    make "sor" "successive over-relaxation, 256x256 grid, 4 sweeps"
      (Sources.sor ~n:256 ~iters:4);
    make "ej" "extrapolated Jacobi, 128x128 grid, 40 sweeps"
      (Sources.ej ~n:128 ~iters:40);
    make "fft" "radix-2 FFT, 256 samples" (Sources.fft ~n:256);
    make "tri" "tridiagonal solver, size 128, 256 right-hand sides"
      (Sources.tri ~n:128 ~systems:256);
    make "lu" "LU decomposition, 128x128" (Sources.lu ~n:128);
  ]

let scaled =
  [
    make "mmul" "matrix multiplication, 12x12 floats" (Sources.mmul ~n:12);
    make "sor" "successive over-relaxation, 16x16 grid, 2 sweeps"
      (Sources.sor ~n:16 ~iters:2);
    make "ej" "extrapolated Jacobi, 12x12 grid, 3 sweeps"
      (Sources.ej ~n:12 ~iters:3);
    make "fft" "radix-2 FFT, 32 samples" (Sources.fft ~n:32);
    make "tri" "tridiagonal solver, size 16, 4 right-hand sides"
      (Sources.tri ~n:16 ~systems:4);
    make "lu" "LU decomposition, 12x12" (Sources.lu ~n:12);
  ]

let extended =
  [
    make "fir" "direct-form FIR filter, 16 taps, 512 samples"
      (Sources.fir ~taps:16 ~samples:512);
    make "iir" "biquad IIR cascade, 4 sections, 1024 samples"
      (Sources.iir ~sections:4 ~samples:1024);
    make "dct" "8x8 two-pass DCT over 64 image blocks" (Sources.dct ~blocks:64);
  ]

let by_name list name = List.find (fun w -> w.name = name) list

let compile w = Minic.Compile.compile w.source
