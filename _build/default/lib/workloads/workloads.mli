(** Registry of the paper's six benchmarks at paper sizes, plus scaled-down
    variants for fast tests. *)

type t = {
  name : string;  (** the paper's short name: mmul, sor, ej, fft, tri, lu *)
  description : string;
  source : string;  (** Minic source text *)
}

(** [paper_sized] — the six kernels at the sizes of the paper's §8:
    mmul 100x100, sor 256x256, ej 128x128, fft 256, tri 128, lu 128x128.
    Iteration counts (where the paper does not state them) are chosen so the
    relative run magnitudes track Figure 6 and are documented in
    EXPERIMENTS.md. *)
val paper_sized : t list

(** [scaled] — the same kernels at small sizes (seconds of CPU total). *)
val scaled : t list

(** [extended] — additional embedded-DSP kernels beyond the paper's six
    (FIR, IIR biquad cascade, 8x8 DCT), used by the extension benches. *)
val extended : t list

(** [by_name list name] — lookup. Raises [Not_found]. *)
val by_name : t list -> string -> t

(** [compile w] compiles the kernel.  Raises on compiler errors, which would
    be a bug in this library. *)
val compile : t -> Minic.Compile.compiled
