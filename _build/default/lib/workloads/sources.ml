(* The kernels follow the classic textbook formulations cited by the paper
   (Wolf & Lam for sor; Nakamura for the extrapolated Jacobi method).  All
   print a checksum so runs are comparable and misbehaviour is visible. *)

let mmul ~n =
  Printf.sprintf
    {|
// Matrix multiplication, %d x %d (paper: mmul)
float a[%d][%d];
float b[%d][%d];
float c[%d][%d];

int main() {
  int i; int j; int k; float s;
  for (i = 0; i < %d; i = i + 1) {
    for (j = 0; j < %d; j = j + 1) {
      a[i][j] = itof((i - j) %% 5);
      b[i][j] = itof((i + 2 * j) %% 7);
    }
  }
  for (i = 0; i < %d; i = i + 1) {
    for (j = 0; j < %d; j = j + 1) {
      s = 0.0;
      for (k = 0; k < %d; k = k + 1) {
        s = s + a[i][k] * b[k][j];
      }
      c[i][j] = s;
    }
  }
  s = 0.0;
  for (i = 0; i < %d; i = i + 1) {
    s = s + c[i][i];
  }
  print_float(s);
  print_char(10);
  return 0;
}
|}
    n n n n n n n n n n n n n n

let sor ~n ~iters =
  Printf.sprintf
    {|
// Successive over-relaxation, %d x %d grid, %d sweeps (paper: sor)
float u[%d][%d];

int main() {
  int it; int i; int j; float s;
  for (i = 0; i < %d; i = i + 1) {
    for (j = 0; j < %d; j = j + 1) {
      u[i][j] = itof((i * j) %% 11);
    }
  }
  for (it = 0; it < %d; it = it + 1) {
    for (i = 1; i < %d - 1; i = i + 1) {
      for (j = 1; j < %d - 1; j = j + 1) {
        u[i][j] = u[i][j]
          + 0.375 * (u[i - 1][j] + u[i + 1][j] + u[i][j - 1] + u[i][j + 1]
                     - 4.0 * u[i][j]);
      }
    }
  }
  s = 0.0;
  for (i = 0; i < %d; i = i + 1) {
    s = s + u[i][i];
  }
  print_float(s);
  print_char(10);
  return 0;
}
|}
    n n iters n n n n iters n n n

let ej ~n ~iters =
  Printf.sprintf
    {|
// Extrapolated Jacobi iteration, %d x %d grid, %d sweeps (paper: ej)
float u[%d][%d];
float v[%d][%d];

int main() {
  int it; int i; int j; float s;
  for (i = 0; i < %d; i = i + 1) {
    for (j = 0; j < %d; j = j + 1) {
      u[i][j] = itof((3 * i + j) %% 13);
      v[i][j] = u[i][j];
    }
  }
  for (it = 0; it < %d; it = it + 1) {
    for (i = 1; i < %d - 1; i = i + 1) {
      for (j = 1; j < %d - 1; j = j + 1) {
        v[i][j] = u[i][j]
          + 1.2 * (0.25 * (u[i - 1][j] + u[i + 1][j] + u[i][j - 1] + u[i][j + 1])
                   - u[i][j]);
      }
    }
    for (i = 1; i < %d - 1; i = i + 1) {
      for (j = 1; j < %d - 1; j = j + 1) {
        u[i][j] = v[i][j];
      }
    }
  }
  s = 0.0;
  for (i = 0; i < %d; i = i + 1) {
    s = s + u[i][i];
  }
  print_float(s);
  print_char(10);
  return 0;
}
|}
    n n iters n n n n n n iters n n n n n

let fft ~n =
  if n < 4 || n land (n - 1) <> 0 then
    invalid_arg "Sources.fft: size must be a power of two >= 4";
  let logn =
    let rec go v acc = if v = 1 then acc else go (v / 2) (acc + 1) in
    go n 0
  in
  Printf.sprintf
    {|
// Iterative radix-2 FFT, %d samples (paper: fft)
float re[%d];
float im[%d];

float sin_poly(float x) {
  float x2; float t;
  x2 = x * x;
  t = 1.0 - x2 / 72.0;
  t = 1.0 - x2 / 42.0 * t;
  t = 1.0 - x2 / 20.0 * t;
  return x * (1.0 - x2 / 6.0 * t);
}

float cos_poly(float x) {
  float x2; float t;
  x2 = x * x;
  t = 1.0 - x2 / 56.0;
  t = 1.0 - x2 / 30.0 * t;
  t = 1.0 - x2 / 12.0 * t;
  return 1.0 - x2 / 2.0 * t;
}

int main() {
  int i; int j; int b; int t; int r;
  int len; int half; int base;
  float ang; float wr; float wi; float tr; float ti; float s;
  for (i = 0; i < %d; i = i + 1) {
    re[i] = sin_poly(itof(i %% 7) - 3.0);
    im[i] = 0.0;
  }
  // bit-reversal permutation (arithmetic formulation, no bit ops in Minic)
  for (i = 0; i < %d; i = i + 1) {
    r = 0;
    t = i;
    for (b = 0; b < %d; b = b + 1) {
      r = r * 2 + t %% 2;
      t = t / 2;
    }
    if (r > i) {
      tr = re[i]; re[i] = re[r]; re[r] = tr;
      ti = im[i]; im[i] = im[r]; im[r] = ti;
    }
  }
  // butterflies
  for (len = 2; len <= %d; len = len * 2) {
    half = len / 2;
    for (base = 0; base < %d; base = base + len) {
      for (j = 0; j < half; j = j + 1) {
        ang = 0.0 - 3.14159265 * itof(j) / itof(half);
        wr = cos_poly(ang);
        wi = sin_poly(ang);
        tr = wr * re[base + j + half] - wi * im[base + j + half];
        ti = wr * im[base + j + half] + wi * re[base + j + half];
        re[base + j + half] = re[base + j] - tr;
        im[base + j + half] = im[base + j] - ti;
        re[base + j] = re[base + j] + tr;
        im[base + j] = im[base + j] + ti;
      }
    }
  }
  s = 0.0;
  for (i = 0; i < %d; i = i + 1) {
    s = s + fabs(re[i]) + fabs(im[i]);
  }
  print_float(s);
  print_char(10);
  return 0;
}
|}
    n n n n n logn n n n

let tri ~n ~systems =
  Printf.sprintf
    {|
// Tridiagonal (Thomas) solver, size %d, %d right-hand sides (paper: tri)
float lo[%d];
float di[%d];
float up[%d];
float rhs[%d];
float cp[%d];
float dp[%d];
float x[%d];

int main() {
  int s; int i; float m; float sum;
  for (i = 0; i < %d; i = i + 1) {
    lo[i] = 0.0 - 1.0;
    di[i] = 4.0;
    up[i] = 0.0 - 1.0;
  }
  sum = 0.0;
  for (s = 0; s < %d; s = s + 1) {
    for (i = 0; i < %d; i = i + 1) {
      rhs[i] = itof((i + s) %% 9) + 1.0;
    }
    // forward sweep
    cp[0] = up[0] / di[0];
    dp[0] = rhs[0] / di[0];
    for (i = 1; i < %d; i = i + 1) {
      m = di[i] - lo[i] * cp[i - 1];
      cp[i] = up[i] / m;
      dp[i] = (rhs[i] - lo[i] * dp[i - 1]) / m;
    }
    // back substitution
    x[%d - 1] = dp[%d - 1];
    for (i = %d - 2; i >= 0; i = i - 1) {
      x[i] = dp[i] - cp[i] * x[i + 1];
    }
    sum = sum + x[s %% %d];
  }
  print_float(sum);
  print_char(10);
  return 0;
}
|}
    n systems n n n n n n n n systems n n n n n n

let lu ~n =
  Printf.sprintf
    {|
// Doolittle LU decomposition in place, %d x %d (paper: lu)
float a[%d][%d];

int main() {
  int i; int j; int k; float s;
  for (i = 0; i < %d; i = i + 1) {
    for (j = 0; j < %d; j = j + 1) {
      a[i][j] = itof((i * 7 + j * 3) %% 10) + 1.0;
      if (i == j) {
        a[i][j] = a[i][j] + 64.0;
      }
    }
  }
  for (k = 0; k < %d; k = k + 1) {
    for (i = k + 1; i < %d; i = i + 1) {
      a[i][k] = a[i][k] / a[k][k];
      for (j = k + 1; j < %d; j = j + 1) {
        a[i][j] = a[i][j] - a[i][k] * a[k][j];
      }
    }
  }
  s = 0.0;
  for (i = 0; i < %d; i = i + 1) {
    s = s + a[i][i];
  }
  print_float(s);
  print_char(10);
  return 0;
}
|}
    n n n n n n n n n n

let fir ~taps ~samples =
  Printf.sprintf
    {|
// Direct-form FIR filter, %d taps over %d samples (extension workload)
float x[%d];
float h[%d];
float y[%d];

int main() {
  int i; int j; float acc;
  for (i = 0; i < %d; i = i + 1) {
    x[i] = itof(i %% 17) / 8.0 - 1.0;
  }
  for (i = 0; i < %d; i = i + 1) {
    h[i] = 1.0 / itof(i + 2);
  }
  for (i = %d - 1; i < %d; i = i + 1) {
    acc = 0.0;
    for (j = 0; j < %d; j = j + 1) {
      acc = acc + h[j] * x[i - j];
    }
    y[i] = acc;
  }
  acc = 0.0;
  for (i = 0; i < %d; i = i + 1) {
    acc = acc + fabs(y[i]);
  }
  print_float(acc);
  print_char(10);
  return 0;
}
|}
    taps samples samples taps samples samples taps taps samples taps samples

let iir ~sections ~samples =
  Printf.sprintf
    {|
// Cascade of %d biquad IIR sections over %d samples (extension workload)
float x[%d];
float y[%d];
float state1[%d];
float state2[%d];

int main() {
  int n; int s; float in; float out;
  for (n = 0; n < %d; n = n + 1) {
    x[n] = itof(n %% 13) / 6.0 - 1.0;
  }
  for (s = 0; s < %d; s = s + 1) {
    state1[s] = 0.0;
    state2[s] = 0.0;
  }
  for (n = 0; n < %d; n = n + 1) {
    in = x[n];
    for (s = 0; s < %d; s = s + 1) {
      // transposed direct form II biquad, fixed mild low-pass coefficients
      out = 0.2929 * in + state1[s];
      state1[s] = 0.5858 * in - 0.0 * out + state2[s];
      state2[s] = 0.2929 * in - 0.1716 * out;
      in = out;
    }
    y[n] = in;
  }
  out = 0.0;
  for (n = 0; n < %d; n = n + 1) {
    out = out + fabs(y[n]);
  }
  print_float(out);
  print_char(10);
  return 0;
}
|}
    sections samples samples samples sections sections samples sections
    samples sections samples

let dct ~blocks =
  Printf.sprintf
    {|
// 8x8 two-pass DCT over %d image blocks (extension workload, JPEG style)
float coeff[8][8];
float input[8][8];
float tmp[8][8];
float output[8][8];

float cos_poly(float v) {
  float v2; float t;
  v2 = v * v;
  t = 1.0 - v2 / 56.0;
  t = 1.0 - v2 / 30.0 * t;
  t = 1.0 - v2 / 12.0 * t;
  return 1.0 - v2 / 2.0 * t;
}

// range-reduce to [-pi, pi] before the polynomial
float cosr(float v) {
  float two_pi;
  two_pi = 6.2831853;
  while (v > 3.14159265) { v = v - two_pi; }
  while (v < 0.0 - 3.14159265) { v = v + two_pi; }
  return cos_poly(v);
}

int main() {
  int b; int u; int x; int i; int j; float s; float total;
  // DCT basis: coeff[u][x] = a(u) * cos((2x+1) u pi / 16)
  for (u = 0; u < 8; u = u + 1) {
    for (x = 0; x < 8; x = x + 1) {
      s = cosr(itof((2 * x + 1) * u) * 3.14159265 / 16.0);
      if (u == 0) {
        coeff[u][x] = s * 0.35355339;
      } else {
        coeff[u][x] = s * 0.5;
      }
    }
  }
  total = 0.0;
  for (b = 0; b < %d; b = b + 1) {
    for (i = 0; i < 8; i = i + 1) {
      for (j = 0; j < 8; j = j + 1) {
        input[i][j] = itof((b + i * 3 + j * 7) %% 32) - 16.0;
      }
    }
    // tmp = coeff * input
    for (i = 0; i < 8; i = i + 1) {
      for (j = 0; j < 8; j = j + 1) {
        s = 0.0;
        for (x = 0; x < 8; x = x + 1) {
          s = s + coeff[i][x] * input[x][j];
        }
        tmp[i][j] = s;
      }
    }
    // output = tmp * coeff^T
    for (i = 0; i < 8; i = i + 1) {
      for (j = 0; j < 8; j = j + 1) {
        s = 0.0;
        for (x = 0; x < 8; x = x + 1) {
          s = s + tmp[i][x] * coeff[j][x];
        }
        output[i][j] = s;
      }
    }
    total = total + fabs(output[0][0]);
  }
  print_float(total);
  print_char(10);
  return 0;
}
|}
    blocks blocks
