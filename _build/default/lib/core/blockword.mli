(** Constraint systems over k-bit block words.

    Block words are integers: bit [i] is the bit at stream position [i]
    within the block, bit 0 being the {e earliest} bit (rendered rightmost,
    as in the paper's tables).  A candidate code word [code] decodes to the
    original [word] under transformation [tau] when the defining equations
    hold:

    - position 1: [word.(1) = tau (code.(1), code.(0))] — the history for the
      first link is the {e stored} value of the block's first bit (for a
      standalone block this equals the original since the first bit passes
      through; for a chained block it is the overlap bit fixed by the
      previous block);
    - position [i >= 2]: [word.(i) = tau (code.(i), word.(i-1))] — history is
      the previously {e decoded original} bit. *)

(** [transitions ~k w] is the number of adjacent bit flips in the [k]-bit
    word [w].  Raises [Invalid_argument] if [k] is not in [1..30] or [w] has
    bits beyond [k]. *)
val transitions : k:int -> int -> int

(** [tau_mask ~k ~word ~code] is the {!Boolfun} mask of every transformation
    consistent with all the defining equations above (the first-bit equation
    is {e not} included; see {!tau_mask_standalone}). *)
val tau_mask : k:int -> word:int -> code:int -> int

(** [tau_mask_standalone ~k ~word ~code] additionally requires the first-bit
    pass-through [code.(0) = word.(0)]; the mask is [0] when violated. *)
val tau_mask_standalone : k:int -> word:int -> code:int -> int

(** [decode ~k ~tau ~code ~seed_original] runs the decoder equations over a
    [k]-bit code block whose first bit decodes to [seed_original] (for a
    standalone block pass [seed_original = code.(0) bit]): returns the
    original word.  Position 0 of the result is [seed_original]; the
    remaining bits follow the equations with history seeded from the stored
    first bit. *)
val decode : k:int -> tau:Boolfun.t -> code:int -> seed_original:bool -> int

(** [codewords_by_transitions k] lists all [2^k] words ordered by increasing
    transition count (ties in increasing numeric order); memoized per [k]. *)
val codewords_by_transitions : int -> int array
