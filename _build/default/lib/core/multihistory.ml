type totals = {
  h : int;
  k : int;
  ttn : int;
  rtn : int;
  improvement_pct : float;
}

let check_params ~h ~k =
  if h < 1 || h > 3 then invalid_arg "Multihistory: h not in 1..3";
  if k < 1 || k > 16 then invalid_arg "Multihistory: k not in 1..16"

let bit w i = w lsr i land 1

(* History bit j in 1..h at position i: original bit (i-j), replicating bit 0
   before the block start. *)
let history_bits ~h ~word ~i =
  let acc = ref 0 in
  for j = 1 to h do
    let src = max 0 (i - j) in
    acc := (!acc lsl 1) lor bit word src
  done;
  !acc

(* Slot constraints as two bitmasks over the 2^(h+1) truth-table slots:
   slots required 0 and slots required 1; feasible iff disjoint. *)
let constraints ~h ~k ~word ~code =
  if bit word 0 <> bit code 0 then None
  else begin
    let want0 = ref 0 and want1 = ref 0 in
    let ok = ref true in
    for i = 1 to k - 1 do
      let slot = (bit code i lsl h) lor history_bits ~h ~word ~i in
      let v = bit word i in
      if v = 1 then want1 := !want1 lor (1 lsl slot)
      else want0 := !want0 lor (1 lsl slot)
    done;
    if !want0 land !want1 <> 0 then ok := false;
    if !ok then Some (!want0, !want1) else None
  end

let solve_table ~h ~k ~word ~code =
  check_params ~h ~k;
  match constraints ~h ~k ~word ~code with
  | None -> None
  | Some (_, want1) -> Some want1

let decode ~h ~k ~table ~code =
  check_params ~h ~k;
  let word = ref (bit code 0) in
  for i = 1 to k - 1 do
    let slot = (bit code i lsl h) lor history_bits ~h ~word:!word ~i in
    let v = table lsr slot land 1 in
    word := !word lor (v lsl i)
  done;
  !word

let solve ~h ~k word =
  check_params ~h ~k;
  let candidates = Blockword.codewords_by_transitions k in
  let rec scan i =
    if i >= Array.length candidates then assert false
    else
      let code = candidates.(i) in
      match constraints ~h ~k ~word ~code with
      | Some _ -> code
      | None -> scan (i + 1)
  in
  scan 0

let totals ~h ~k =
  check_params ~h ~k;
  let ttn = ref 0 and rtn = ref 0 in
  for word = 0 to (1 lsl k) - 1 do
    ttn := !ttn + Blockword.transitions ~k word;
    rtn := !rtn + Blockword.transitions ~k (solve ~h ~k word)
  done;
  let improvement_pct =
    if !ttn = 0 then 0.0
    else 100.0 *. (1.0 -. (float_of_int !rtn /. float_of_int !ttn))
  in
  { h; k; ttn = !ttn; rtn = !rtn; improvement_pct }

let pp_totals fmt t =
  Format.fprintf fmt "h=%d k=%d TTN=%d RTN=%d improvement=%.1f%%" t.h t.k
    t.ttn t.rtn t.improvement_pct
