(** Minimal transformation subsets (paper §5.2).

    The paper reports that a unique subset of eight transformations achieves
    the globally optimal (16-function) encoding for every block size up to
    seven, allowing 3-bit transformation indices in the hardware tables.
    This module derives that subset from first principles rather than
    hard-coding it. *)

(** [requirements ~kmax] is, for every block size [2..kmax] and every block
    word, the mask of transformations appearing in {e some} optimal
    (minimum-transition) code assignment for that word.  A subset preserves
    global optimality iff it intersects every returned mask.  Duplicate
    masks are removed. *)
val requirements : kmax:int -> int list

(** [all_minimal ~kmax] lists every smallest-cardinality transformation
    subset (as masks) preserving per-word optimality for all block sizes up
    to [kmax], in increasing mask order. *)
val all_minimal : kmax:int -> int list

(** [canonical ()] is the minimal subset for [kmax = 7], preferring (in
    order) subsets containing the identity, subsets closed under
    {!Boolfun.dual}, and the numerically smallest mask.  Memoized.

    Measured result: the minimum has {e six} members —
    [x], [!x], [x^y], [!(x^y)], [!(x|y)], [!(x&y)] — and is unique at that
    size; the paper's eight-function claim is sufficient but not minimal
    (see EXPERIMENTS.md). *)
val canonical : unit -> Boolfun.t list

(** [paper_eight] is the fixed eight-transformation set named by the paper
    (§5.2): identity, inversion, [y], [!y], XOR, XNOR, NOR, NAND.  It is a
    superset of {!canonical}, closed under {!Boolfun.dual}, and is what the
    hardware's 3-bit transformation indices address. *)
val paper_eight : Boolfun.t list

(** [paper_eight_mask] is {!paper_eight} as a mask. *)
val paper_eight_mask : int

(** [canonical_mask ()] is [canonical ()] as a mask. *)
val canonical_mask : unit -> int

(** [achieves_per_word_optimal ~subset_mask ~k] checks that restricting the
    solver to [subset_mask] yields, for {e every} [k]-bit word, a code with
    exactly as few transitions as the unrestricted optimum. *)
val achieves_per_word_optimal : subset_mask:int -> k:int -> bool
