(** Optimal standalone power codes for fixed block sizes.

    For every [k]-bit block word the solver finds a code word with the
    minimum possible number of bit transitions that maps back to the
    original under a single transformation, subject to the first-bit
    pass-through.  This regenerates the paper's Figure 2 ([k = 3]),
    Figure 4 ([k = 5], restricted transformation set) and Figure 3
    (total/reduced transition numbers for [k = 2..7]). *)

type entry = {
  word : int;  (** original block word *)
  code : int;  (** chosen minimum-transition code word *)
  tau : Boolfun.t;  (** chosen transformation *)
  tau_mask : int;  (** every transformation consistent with (word, code) *)
  word_transitions : int;  (** [T_x] in the paper's tables *)
  code_transitions : int;  (** [T_x~] in the paper's tables *)
}

(** [solve ?subset_mask ~k word] is the optimal entry for [word].  Code
    words are scanned in order of increasing transitions (ties numerically),
    and the transformation is chosen by a fixed preference order (identity
    first), making the result deterministic.  [subset_mask] restricts the
    admissible transformations (default: all 16).  The identity always
    yields a feasible solution, so [code_transitions <= word_transitions].
    Raises [Invalid_argument] if [subset_mask] omits the identity. *)
val solve : ?subset_mask:int -> k:int -> int -> entry

(** [table ?subset_mask ~k ()] is [solve] applied to all [2^k] words in
    numeric order. *)
val table : ?subset_mask:int -> k:int -> unit -> entry array

type totals = {
  k : int;
  ttn : int;  (** total transition number over all [2^k] originals *)
  rtn : int;  (** reduced transition number over the chosen codes *)
  improvement_pct : float;  (** [100 * (1 - rtn/ttn)] *)
}

(** [totals ?subset_mask ~k ()] sums a {!table} — the Figure 3 generator.
    The closed form [ttn = (k-1) * 2^(k-1)] always holds. *)
val totals : ?subset_mask:int -> k:int -> unit -> totals

(** [pp_entry ~k] prints one table row as
    ["XXX -> CCC  tau  Tx=.. Tc=.."] with [k]-bit binary renderings. *)
val pp_entry : k:int -> Format.formatter -> entry -> unit

val pp_totals : Format.formatter -> totals -> unit
