(** Longer-history transformations (the paper's §5.1 generalisation).

    The paper formulates [x_n = tau (x~_n, x_{n-1}, ..., x_{n-h})] and then
    restricts to [h = 1].  This module explores the rest of the design
    space: with [h] history bits a transformation is a boolean function of
    [h+1] inputs ([2^(2^(h+1))] candidates — 16 for h=1, 256 for h=2,
    65536 for h=3), and the standalone-block solver generalises directly:
    a code word is feasible for a word when the slot constraints it induces
    on the truth table are conflict-free.

    Histories reaching before the block's first bit replicate bit 0 (which
    for a standalone block is also the stored first bit), so [h = 1] here
    coincides exactly with {!Solver}. *)

type totals = {
  h : int;
  k : int;
  ttn : int;
  rtn : int;
  improvement_pct : float;
}

(** [solve ~h ~k word] is a minimum-transition feasible code word for
    [word] under [h]-bit history ([h] in 1..3, [k] in 1..16).  Determinism:
    codes are scanned by increasing transitions, ties numerically. *)
val solve : h:int -> k:int -> int -> int

(** [decode ~h ~k ~table ~code] runs the decoder equations with truth table
    [table] (bit [x * 2^h + history] is the output); exposed for round-trip
    tests together with {!solve_table}. *)
val decode : h:int -> k:int -> table:int -> code:int -> int

(** [solve_table ~h ~k ~word ~code] is a truth table mapping [code] to
    [word], when one exists (unconstrained slots default to 0). *)
val solve_table : h:int -> k:int -> word:int -> code:int -> int option

(** [totals ~h ~k] sums original and optimal-code transitions over all
    [2^k] words — the Figure 3 generalisation. *)
val totals : h:int -> k:int -> totals

val pp_totals : Format.formatter -> totals -> unit
