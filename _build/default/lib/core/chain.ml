module Bitvec = Bitutil.Bitvec

type encoded = { code : Bitvec.t; taus : Boolfun.t array; k : int }

let check_k k =
  if k < 2 || k > 16 then invalid_arg "Chain: block size not in 2..16"

let block_count ~n ~k =
  check_k k;
  if n <= 0 then 0
  else if n <= k then 1
  else 1 + (((n - k) + (k - 2)) / (k - 1))

(* Block start positions: 0, k-1, 2(k-1), ...; each block spans up to k bits
   from its start, the first bit being shared with the previous block. *)
let block_spans ~n ~k =
  let rec go start acc =
    if start >= n - 1 && start > 0 then List.rev acc
    else
      let len = min k (n - start) in
      let next = start + len - 1 in
      let acc = (start, len) :: acc in
      if next >= n - 1 then List.rev acc else go next acc
  in
  if n = 0 then [] else go 0 []

let subword stream ~pos ~len =
  let w = ref 0 in
  for i = len - 1 downto 0 do
    w := (!w lsl 1) lor (if Bitvec.get stream (pos + i) then 1 else 0)
  done;
  !w

let blit_code code ~pos ~len value =
  let c = ref code in
  for i = 0 to len - 1 do
    c := Bitvec.set !c (pos + i) (value lsr i land 1 = 1)
  done;
  !c

let encode_greedy ?(subset_mask = Boolfun.full_mask) ~k stream =
  check_k k;
  let n = Bitvec.length stream in
  let spans = block_spans ~n ~k in
  let code = ref (Bitvec.create n) in
  let taus = ref [] in
  let encode_block (start, len) =
    let table = Codetable.get ~subset_mask ~k:len () in
    let word = subword stream ~pos:start ~len in
    let choice =
      if start = 0 then Codetable.standalone table ~word
      else
        let b_in = Bitvec.get !code start in
        Codetable.chained_best table ~b_in ~word
    in
    code := blit_code !code ~pos:start ~len choice.Codetable.code;
    taus := choice.Codetable.tau :: !taus
  in
  List.iter encode_block spans;
  { code = !code; taus = Array.of_list (List.rev !taus); k }

let encode_optimal ?(subset_mask = Boolfun.full_mask) ~k stream =
  check_k k;
  let n = Bitvec.length stream in
  let spans = Array.of_list (block_spans ~n ~k) in
  let blocks = Array.length spans in
  if blocks = 0 then { code = Bitvec.create 0; taus = [||]; k }
  else begin
    (* dp.(j).(b): minimal transitions of blocks 0..j-1 with boundary bit
       (last encoded bit of block j-1) equal to b; parent choice records the
       (code, tau) of block j-1 that achieved it. *)
    let infinity_cost = max_int / 2 in
    let dp = Array.make_matrix (blocks + 1) 2 infinity_cost in
    let parent = Array.make_matrix (blocks + 1) 2 None in
    let start0, len0 = spans.(0) in
    let word0 = subword stream ~pos:start0 ~len:len0 in
    let table0 = Codetable.get ~subset_mask ~k:len0 () in
    (* Block 0: standalone — enumerate feasible codes grouped by out bit. *)
    for b_out = 0 to 1 do
      let first_bit = word0 land 1 in
      (* standalone = chained with b_in equal to the original first bit *)
      match
        Codetable.chained_best_out table0 ~b_in:(first_bit = 1) ~word:word0
          ~b_out:(b_out = 1)
      with
      | None -> ()
      | Some c ->
          if c.Codetable.cost < dp.(1).(b_out) then begin
            dp.(1).(b_out) <- c.Codetable.cost;
            parent.(1).(b_out) <- Some (c, 0)
          end
    done;
    for j = 1 to blocks - 1 do
      let start, len = spans.(j) in
      let word = subword stream ~pos:start ~len in
      let table = Codetable.get ~subset_mask ~k:len () in
      for b_in = 0 to 1 do
        if dp.(j).(b_in) < infinity_cost then
          for b_out = 0 to 1 do
            match
              Codetable.chained_best_out table ~b_in:(b_in = 1) ~word
                ~b_out:(b_out = 1)
            with
            | None -> ()
            | Some c ->
                let total = dp.(j).(b_in) + c.Codetable.cost in
                if total < dp.(j + 1).(b_out) then begin
                  dp.(j + 1).(b_out) <- total;
                  parent.(j + 1).(b_out) <- Some (c, b_in)
                end
          done
      done
    done;
    let final = if dp.(blocks).(0) <= dp.(blocks).(1) then 0 else 1 in
    assert (dp.(blocks).(final) < infinity_cost);
    let code = ref (Bitvec.create n) in
    let taus = Array.make blocks Boolfun.identity in
    let rec rebuild j b =
      if j = 0 then ()
      else
        match parent.(j).(b) with
        | None -> assert false
        | Some (c, b_prev) ->
            let start, len = spans.(j - 1) in
            code := blit_code !code ~pos:start ~len c.Codetable.code;
            taus.(j - 1) <- c.Codetable.tau;
            rebuild (j - 1) b_prev
    in
    rebuild blocks final;
    { code = !code; taus; k }
  end

let decode { code; taus; k } =
  let n = Bitvec.length code in
  let spans = block_spans ~n ~k in
  let original = ref (Bitvec.create n) in
  List.iteri
    (fun j (start, len) ->
      let tau = taus.(j) in
      if start = 0 && len >= 1 then
        original := Bitvec.set !original 0 (Bitvec.get code 0);
      for i = 1 to len - 1 do
        let pos = start + i in
        let history =
          if i = 1 then Bitvec.get code start
          else Bitvec.get !original (pos - 1)
        in
        let v = Boolfun.apply tau (Bitvec.get code pos) history in
        original := Bitvec.set !original pos v
      done)
    spans;
  !original

let transitions_saved ~original ~encoded =
  Bitvec.transitions original - Bitvec.transitions encoded.code
