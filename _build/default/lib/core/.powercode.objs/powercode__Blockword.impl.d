lib/core/blockword.ml: Array Boolfun Fun Hashtbl List
