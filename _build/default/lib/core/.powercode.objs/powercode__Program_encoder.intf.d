lib/core/program_encoder.mli: Bitutil Boolfun
