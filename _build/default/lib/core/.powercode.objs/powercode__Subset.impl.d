lib/core/subset.ml: Array Blockword Boolfun Hashtbl List Solver
