lib/core/multihistory.ml: Array Blockword Format
