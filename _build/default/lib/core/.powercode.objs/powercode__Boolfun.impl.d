lib/core/boolfun.ml: Format Int List
