lib/core/solver.ml: Array Blockword Boolfun Format List String
