lib/core/multihistory.mli: Format
