lib/core/blockword.mli: Boolfun
