lib/core/boolfun.mli: Format
