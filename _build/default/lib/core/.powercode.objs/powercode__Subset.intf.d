lib/core/subset.mli: Boolfun
