lib/core/solver.mli: Boolfun Format
