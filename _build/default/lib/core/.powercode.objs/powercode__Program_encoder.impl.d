lib/core/program_encoder.ml: Array Bitutil Boolfun Chain Int List Subset
