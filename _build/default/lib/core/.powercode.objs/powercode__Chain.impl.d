lib/core/chain.ml: Array Bitutil Boolfun Codetable List
