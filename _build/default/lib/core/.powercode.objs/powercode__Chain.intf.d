lib/core/chain.mli: Bitutil Boolfun
