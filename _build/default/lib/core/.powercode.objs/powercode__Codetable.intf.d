lib/core/codetable.mli: Boolfun
