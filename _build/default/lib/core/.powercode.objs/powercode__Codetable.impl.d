lib/core/codetable.ml: Array Blockword Boolfun Hashtbl List Solver
