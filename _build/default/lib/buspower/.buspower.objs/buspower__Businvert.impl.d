lib/buspower/businvert.ml: Array
