lib/buspower/energy.mli: Format
