lib/buspower/gray.mli:
