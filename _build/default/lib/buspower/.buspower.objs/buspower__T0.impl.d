lib/buspower/t0.ml: Array Buscount
