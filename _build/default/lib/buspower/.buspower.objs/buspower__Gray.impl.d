lib/buspower/gray.ml: Array Buscount
