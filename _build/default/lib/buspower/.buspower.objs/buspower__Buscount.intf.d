lib/buspower/buscount.mli:
