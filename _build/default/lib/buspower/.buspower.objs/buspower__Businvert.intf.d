lib/buspower/businvert.mli:
