lib/buspower/energy.ml: Float Format
