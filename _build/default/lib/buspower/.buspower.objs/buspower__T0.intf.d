lib/buspower/t0.mli:
