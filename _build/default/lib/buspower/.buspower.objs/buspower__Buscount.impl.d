lib/buspower/buscount.ml: Array
