(** The fetch-side decode path: BBIT match, TT sequencing via the E/CT
    delimiters, one two-input decode gate per bus line, and the one-bit
    history register per line (seeded from the {e stored} overlap bit at
    every code-block boundary, per §6).

    The decoder sits between the instruction store (holding the encoded
    image) and the pipeline: each fetch returns both the word that toggled
    the bus (the stored word) and the restored original instruction word.
    Any disagreement between the restored word and the true program is a
    hardware-model bug, surfaced by the integration harness. *)

type t

exception Decode_error of string

(** [create ~tt ~bbit ~k ~image ()] — [image] is the stored instruction
    memory (encoded regions patched in); [k] the code block size the TT
    entries were generated for. *)
val create :
  tt:Tt.t -> bbit:Bbit.t -> k:int -> image:int array -> unit -> t

(** [fetch t ~pc] is [(bus_word, decoded_word)] for the instruction at
    [pc].  Raises {!Decode_error} if the fetch sequence violates the
    decoder's invariants (e.g. a branch into the middle of an encoded
    block, which the encoder guarantees cannot happen). *)
val fetch : t -> pc:int -> int * int

(** [reset t] clears the sequencing state (a new activation of the loop). *)
val reset : t -> unit

(** [active t] — is the decoder currently inside an encoded block? *)
val active : t -> bool
