(** The programming port (paper §7.1, second deployment alternative).

    "The tables containing the power transformation information can be
    accessed as a memory of a special peripheral device … written … by a
    set of instructions inserted within the application code and executed
    just prior to entering the loop."

    Register map (word offsets from the window base):
    {v
      0x00  TT_INDEX    entry to program (staged)
      0x04  TT_TAU0     4-bit gate indices for bus lines 0..7
      0x08  TT_TAU1     lines 8..15
      0x0C  TT_TAU2     lines 16..23
      0x10  TT_TAU3     lines 24..31
      0x14  TT_CTRL     bit 0 = E, bits 8.. = CT; writing commits the entry
      0x18  BBIT_SLOT   slot to program (staged)
      0x1C  BBIT_PC     block head PC (staged)
      0x20  BBIT_BASE   TT base index; writing commits the entry
    v}

    Reads return the staged values ([TT_CTRL]/[BBIT_BASE] read 0). *)

type t

(** [create ~tt ~bbit] wraps fresh tables behind the port. *)
val create : tt:Tt.t -> bbit:Bbit.t -> t

val tt : t -> Tt.t
val bbit : t -> Bbit.t

(** [mmio ?base t] is the CPU window (default base [0x4000_0000], safely
    above any data memory this project creates). *)
val mmio : ?base:int -> t -> Machine.Cpu.mmio

(** [script_of_system system] is the (offset, value) write sequence that
    programs equivalent tables through the port — what the inserted
    instructions would execute.  Raises [Invalid_argument] if an entry's
    CT exceeds the CTRL field or a gate index exceeds 4 bits. *)
val script_of_system : Reprogram.system -> (int * int) list

(** [loader_program ?base script] is an assembly program that performs the
    writes with [sw] instructions and exits — runnable on the simulator
    with this peripheral mapped. *)
val loader_program : ?base:int -> (int * int) list -> Isa.Program.t
