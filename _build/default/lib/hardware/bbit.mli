(** The Basic Block Identification Table (paper §7.2, Figure 5b).

    One entry per encoded basic block: the PC of its first instruction and
    the index of its first Transformation Table entry.  The fetch engine
    consults it on every fetch address (a small fully-associative match,
    like a micro-TLB); a hit starts decoding with the named TT entry. *)

type entry = { pc : int; tt_base : int }

type t

(** [create ?capacity ()] — the paper sizes this "in the range of 10";
    default 16. *)
val create : ?capacity:int -> unit -> t

val capacity : t -> int

(** [write t ~slot entry] programs one entry (a peripheral write).
    Raises [Invalid_argument] out of capacity or on duplicate [pc]. *)
val write : t -> slot:int -> entry -> unit

(** [load t entries] programs consecutive slots from 0. *)
val load : t -> entry list -> unit

(** [lookup t ~pc] is the TT base for a block starting at [pc], if any. *)
val lookup : t -> pc:int -> int option

(** [entries t] lists programmed entries by slot. *)
val entries : t -> entry list

(** [writes_performed t] counts {!write} operations. *)
val writes_performed : t -> int

(** [storage_bits t ~pc_bits ~tt_index_bits] is the SRAM cost. *)
val storage_bits : t -> pc_bits:int -> tt_index_bits:int -> int
