lib/hardware/peripheral.mli: Bbit Isa Machine Reprogram Tt
