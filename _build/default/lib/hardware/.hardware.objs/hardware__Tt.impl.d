lib/hardware/tt.ml: Array List Powercode
