lib/hardware/reprogram.mli: Bbit Fetch_decoder Isa Powercode Tt
