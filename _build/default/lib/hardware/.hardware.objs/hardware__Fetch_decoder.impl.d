lib/hardware/fetch_decoder.ml: Array Bbit Powercode Printf Tt
