lib/hardware/firmware.ml: Array Bbit Buffer Fetch_decoder Isa List Powercode Printf Reprogram String Tt
