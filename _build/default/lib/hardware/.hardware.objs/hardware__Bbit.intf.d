lib/hardware/bbit.mli:
