lib/hardware/tt.mli: Powercode
