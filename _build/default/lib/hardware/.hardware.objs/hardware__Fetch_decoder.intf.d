lib/hardware/fetch_decoder.mli: Bbit Tt
