lib/hardware/firmware.mli: Isa Reprogram
