lib/hardware/reprogram.ml: Array Bbit Bitutil Fetch_decoder Isa List Powercode Printf Tt
