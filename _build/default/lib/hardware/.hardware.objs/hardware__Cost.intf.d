lib/hardware/cost.mli: Format
