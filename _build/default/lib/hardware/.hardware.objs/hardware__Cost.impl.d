lib/hardware/cost.ml: Format
