lib/hardware/bbit.ml: Array Fun Hashtbl List
