lib/hardware/peripheral.ml: Array Bbit Isa List Machine Printf Reprogram Tt
