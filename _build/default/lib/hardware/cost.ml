type report = {
  k : int;
  tt_entries : int;
  bus_width : int;
  fn_count : int;
  fn_index_bits : int;
  ct_bits : int;
  tt_bits : int;
  bbit_entries : int;
  bbit_bits : int;
  decode_gate_count : int;
  mux_inputs_per_line : int;
  max_instructions_covered : int;
}

let bits_for n =
  let rec go v acc = if v <= 1 then acc else go ((v + 1) / 2) (acc + 1) in
  max 1 (go n 0)

let report ?(bus_width = 32) ?(bbit_entries = 16) ?(pc_bits = 16) ~k
    ~tt_entries ~fn_count () =
  if k < 2 then invalid_arg "Cost.report: k < 2";
  let fn_index_bits = bits_for fn_count in
  let ct_bits = bits_for k in
  let tt_index_bits = bits_for tt_entries in
  {
    k;
    tt_entries;
    bus_width;
    fn_count;
    fn_index_bits;
    ct_bits;
    tt_bits = tt_entries * ((bus_width * fn_index_bits) + 1 + ct_bits);
    bbit_entries;
    bbit_bits = bbit_entries * (pc_bits + tt_index_bits);
    (* one gate of each supported kind per line, muxed by the index *)
    decode_gate_count = bus_width * fn_count;
    mux_inputs_per_line = fn_count;
    max_instructions_covered = k + ((tt_entries - 1) * (k - 1));
  }

let pp fmt r =
  Format.fprintf fmt
    "k=%d TT=%d entries (%d bits) BBIT=%d entries (%d bits) gates=%d \
     mux=%d:1 covers<=%d insns"
    r.k r.tt_entries r.tt_bits r.bbit_entries r.bbit_bits
    r.decode_gate_count r.mux_inputs_per_line r.max_instructions_covered
