exception Parse_error of string

let fail message = raise (Parse_error message)

let to_string (system : Reprogram.system) =
  let b = Buffer.create 4096 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "POWERCODE-FIRMWARE v1";
  line "k %d" system.Reprogram.k;
  let functions = Tt.functions system.Reprogram.tt in
  line "functions %d" (Array.length functions);
  Array.iter
    (fun f -> line "%d" (Powercode.Boolfun.index f))
    functions;
  line "image %d" (Array.length system.Reprogram.image);
  Array.iter (fun w -> line "%08x" w) system.Reprogram.image;
  let entries = Tt.programmed system.Reprogram.tt in
  line "tt %d" (List.length entries);
  List.iter
    (fun (index, (e : Tt.entry)) ->
      let taus =
        String.concat ""
          (Array.to_list (Array.map (Printf.sprintf "%x") e.Tt.tau_indices))
      in
      line "%d %d %d %s" index (if e.Tt.e_bit then 1 else 0) e.Tt.ct taus)
    entries;
  let bbit_entries = Bbit.entries system.Reprogram.bbit in
  line "bbit %d" (List.length bbit_entries);
  List.iter
    (fun (e : Bbit.entry) -> line "%d %d" e.Bbit.pc e.Bbit.tt_base)
    bbit_entries;
  line "end";
  Buffer.contents b

type cursor = { mutable lines : string list; mutable lineno : int }

let next cur =
  match cur.lines with
  | [] -> fail "unexpected end of file"
  | l :: rest ->
      cur.lines <- rest;
      cur.lineno <- cur.lineno + 1;
      String.trim l

let expect_kv cur key =
  let l = next cur in
  match String.split_on_char ' ' l with
  | [ k; v ] when k = key -> (
      match int_of_string_opt v with
      | Some n -> n
      | None -> fail (Printf.sprintf "line %d: bad %s count" cur.lineno key))
  | _ -> fail (Printf.sprintf "line %d: expected '%s <n>'" cur.lineno key)

let of_string text =
  let cur =
    { lines = String.split_on_char '\n' text; lineno = 0 }
  in
  if next cur <> "POWERCODE-FIRMWARE v1" then fail "bad magic";
  let k = expect_kv cur "k" in
  let nfn = expect_kv cur "functions" in
  let functions =
    Array.init nfn (fun _ ->
        match int_of_string_opt (next cur) with
        | Some i when i >= 0 && i <= 15 -> Powercode.Boolfun.of_index i
        | Some _ | None ->
            fail (Printf.sprintf "line %d: bad function index" cur.lineno))
  in
  let nimg = expect_kv cur "image" in
  let image =
    Array.init nimg (fun _ ->
        match int_of_string_opt ("0x" ^ next cur) with
        | Some w when w >= 0 && w <= 0xffffffff -> w
        | Some _ | None ->
            fail (Printf.sprintf "line %d: bad image word" cur.lineno))
  in
  let ntt = expect_kv cur "tt" in
  let tt = Tt.create ~capacity:(max 16 ntt) ~functions () in
  for _ = 1 to ntt do
    let l = next cur in
    match String.split_on_char ' ' l with
    | [ index; e; ct; taus ] when String.length taus = 32 ->
        let tau_indices =
          Array.init 32 (fun i ->
              match int_of_string_opt (Printf.sprintf "0x%c" taus.[i]) with
              | Some v -> v
              | None -> fail (Printf.sprintf "line %d: bad gate index" cur.lineno))
        in
        let get name v =
          match int_of_string_opt v with
          | Some n -> n
          | None -> fail (Printf.sprintf "line %d: bad %s" cur.lineno name)
        in
        Tt.write tt ~index:(get "index" index)
          {
            Tt.tau_indices;
            e_bit = get "E" e = 1;
            ct = get "CT" ct;
          }
    | _ -> fail (Printf.sprintf "line %d: bad tt entry" cur.lineno)
  done;
  let nbb = expect_kv cur "bbit" in
  let bbit = Bbit.create ~capacity:(max 16 nbb) () in
  for slot = 0 to nbb - 1 do
    let l = next cur in
    match String.split_on_char ' ' l with
    | [ pc; base ] -> (
        match (int_of_string_opt pc, int_of_string_opt base) with
        | Some pc, Some tt_base -> Bbit.write bbit ~slot { Bbit.pc; tt_base }
        | _ -> fail (Printf.sprintf "line %d: bad bbit entry" cur.lineno))
    | _ -> fail (Printf.sprintf "line %d: bad bbit entry" cur.lineno)
  done;
  if next cur <> "end" then fail "missing end marker";
  { Reprogram.tt; bbit; image; k }

let restore_program (system : Reprogram.system) =
  let decoder = Fetch_decoder.create ~tt:system.Reprogram.tt
      ~bbit:system.Reprogram.bbit ~k:system.Reprogram.k
      ~image:system.Reprogram.image ()
  in
  (* Walk the image in address order.  Encoded regions start at BBIT PCs
     and the decoder's E/CT sequencing ends them; everything else passes
     through.  Sequential order is exactly what the decoder expects within
     a region, and bypass fetches do not disturb its state. *)
  let n = Array.length system.Reprogram.image in
  let words =
    Array.init n (fun pc ->
        let _bus, decoded = Fetch_decoder.fetch decoder ~pc in
        decoded)
  in
  Isa.Program.of_insns (Isa.Word.decode_program words)
