type entry = { pc : int; tt_base : int }

type t = {
  capacity : int;
  slots : entry option array;
  (* pc -> tt_base, the associative match the hardware does in parallel *)
  index : (int, int) Hashtbl.t;
  mutable writes : int;
}

let create ?(capacity = 16) () =
  if capacity < 1 then invalid_arg "Bbit.create: empty table";
  {
    capacity;
    slots = Array.make capacity None;
    index = Hashtbl.create 16;
    writes = 0;
  }

let capacity t = t.capacity

let write t ~slot entry =
  if slot < 0 || slot >= t.capacity then
    invalid_arg "Bbit.write: slot out of capacity";
  if Hashtbl.mem t.index entry.pc then
    invalid_arg "Bbit.write: duplicate block PC";
  (match t.slots.(slot) with
  | Some old -> Hashtbl.remove t.index old.pc
  | None -> ());
  t.slots.(slot) <- Some entry;
  Hashtbl.replace t.index entry.pc entry.tt_base;
  t.writes <- t.writes + 1

let load t entries = List.iteri (fun slot e -> write t ~slot e) entries

let lookup t ~pc = Hashtbl.find_opt t.index pc

let entries t =
  Array.to_list t.slots |> List.filter_map Fun.id

let writes_performed t = t.writes

let storage_bits t ~pc_bits ~tt_index_bits =
  t.capacity * (pc_bits + tt_index_bits)
