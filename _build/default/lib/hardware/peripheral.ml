type t = {
  tt : Tt.t;
  bbit : Bbit.t;
  (* staged registers *)
  mutable tt_index : int;
  tau_words : int array;  (* 4 words x 8 lines x 4-bit indices *)
  mutable bbit_slot : int;
  mutable bbit_pc : int;
}

let reg_tt_index = 0x00
let reg_tt_tau0 = 0x04
let reg_tt_ctrl = 0x14
let reg_bbit_slot = 0x18
let reg_bbit_pc = 0x1c
let reg_bbit_base = 0x20
let window_bytes = 0x24

let create ~tt ~bbit =
  {
    tt;
    bbit;
    tt_index = 0;
    tau_words = Array.make 4 0;
    bbit_slot = 0;
    bbit_pc = 0;
  }

let tt t = t.tt
let bbit t = t.bbit

let unpack_taus tau_words =
  Array.init 32 (fun line ->
      tau_words.(line / 8) lsr (4 * (line mod 8)) land 0xf)

let store t ~offset ~value =
  if offset = reg_tt_index then t.tt_index <- value
  else if offset >= reg_tt_tau0 && offset < reg_tt_tau0 + 16 && offset land 3 = 0
  then t.tau_words.((offset - reg_tt_tau0) / 4) <- value
  else if offset = reg_tt_ctrl then
    Tt.write t.tt ~index:t.tt_index
      {
        Tt.tau_indices = unpack_taus t.tau_words;
        e_bit = value land 1 = 1;
        ct = value lsr 8;
      }
  else if offset = reg_bbit_slot then t.bbit_slot <- value
  else if offset = reg_bbit_pc then t.bbit_pc <- value
  else if offset = reg_bbit_base then
    Bbit.write t.bbit ~slot:t.bbit_slot { Bbit.pc = t.bbit_pc; tt_base = value }
  else invalid_arg (Printf.sprintf "Peripheral: bad register offset 0x%x" offset)

let load t ~offset =
  if offset = reg_tt_index then t.tt_index
  else if offset >= reg_tt_tau0 && offset < reg_tt_tau0 + 16 && offset land 3 = 0
  then t.tau_words.((offset - reg_tt_tau0) / 4)
  else if offset = reg_bbit_slot then t.bbit_slot
  else if offset = reg_bbit_pc then t.bbit_pc
  else if offset = reg_tt_ctrl || offset = reg_bbit_base then 0
  else invalid_arg (Printf.sprintf "Peripheral: bad register offset 0x%x" offset)

let default_base = 0x4000_0000

let mmio ?(base = default_base) t =
  {
    Machine.Cpu.base;
    size = window_bytes;
    mmio_store = (fun ~offset ~value -> store t ~offset ~value);
    mmio_load = (fun ~offset -> load t ~offset);
  }

let pack_taus tau_indices =
  let words = Array.make 4 0 in
  Array.iteri
    (fun line idx ->
      if idx < 0 || idx > 0xf then
        invalid_arg "Peripheral: gate index exceeds 4 bits";
      words.(line / 8) <- words.(line / 8) lor (idx lsl (4 * (line mod 8))))
    tau_indices;
  words

let script_of_system (system : Reprogram.system) =
  let script = ref [] in
  let push offset value = script := (offset, value) :: !script in
  List.iter
    (fun (index, (e : Tt.entry)) ->
      if e.Tt.ct lsl 8 > 0x7fffffff then
        invalid_arg "Peripheral: CT exceeds the CTRL field";
      push reg_tt_index index;
      Array.iteri
        (fun w v -> push (reg_tt_tau0 + (4 * w)) v)
        (pack_taus e.Tt.tau_indices);
      push reg_tt_ctrl ((e.Tt.ct lsl 8) lor (if e.Tt.e_bit then 1 else 0)))
    (Tt.programmed system.Reprogram.tt);
  List.iteri
    (fun slot (e : Bbit.entry) ->
      push reg_bbit_slot slot;
      push reg_bbit_pc e.Bbit.pc;
      push reg_bbit_base e.Bbit.tt_base)
    (Bbit.entries system.Reprogram.bbit);
  List.rev !script

let loader_program ?(base = default_base) script =
  let li rd v =
    if v >= -0x8000 && v <= 0x7fff then
      [ Isa.Sym.Op (Isa.Insn.Addiu (rd, Isa.Reg.zero, v)) ]
    else
      let v32 = v land 0xffffffff in
      let hi = v32 lsr 16 land 0xffff in
      let lo = v32 land 0xffff in
      Isa.Sym.Op (Isa.Insn.Lui (rd, hi))
      :: (if lo = 0 then [] else [ Isa.Sym.Op (Isa.Insn.Ori (rd, rd, lo)) ])
  in
  let writes =
    List.concat_map
      (fun (offset, value) ->
        li Isa.Reg.t0 value
        @ li Isa.Reg.t1 (base + offset)
        @ [ Isa.Sym.Op (Isa.Insn.Sw (Isa.Reg.t0, 0, Isa.Reg.t1)) ])
      script
  in
  let exit_ =
    [
      Isa.Sym.Op (Isa.Insn.Addiu (Isa.Reg.v0, Isa.Reg.zero, 10));
      Isa.Sym.Op Isa.Insn.Syscall;
    ]
  in
  Isa.Program.of_items (writes @ exit_)
