(** Hardware overhead estimates (paper §7.2).

    The paper argues the support hardware is frugal: two tiny SRAM arrays
    plus one two-input gate per bus line selected by a small mux.  This
    module produces the concrete numbers for a given configuration so the
    area/block-size trade-off discussion can be reproduced quantitatively. *)

type report = {
  k : int;
  tt_entries : int;
  bus_width : int;
  fn_count : int;  (** decode gates per line *)
  fn_index_bits : int;
  ct_bits : int;
  tt_bits : int;  (** TT SRAM bits *)
  bbit_entries : int;
  bbit_bits : int;  (** BBIT SRAM bits *)
  decode_gate_count : int;  (** two-input gates on the restore path *)
  mux_inputs_per_line : int;
  max_instructions_covered : int;  (** with full TT and one block *)
}

(** [report ?bus_width ?bbit_entries ?pc_bits ~k ~tt_entries ~fn_count ()]
    computes the full overhead sheet.  [max_instructions_covered] uses the
    true one-bit-overlap arithmetic [k + (entries-1) * (k-1)] — the paper's
    §7.2 multiplication overstates it (documented in EXPERIMENTS.md). *)
val report :
  ?bus_width:int ->
  ?bbit_entries:int ->
  ?pc_bits:int ->
  k:int ->
  tt_entries:int ->
  fn_count:int ->
  unit ->
  report

val pp : Format.formatter -> report -> unit
