(** Firmware bundles — the paper's first deployment mode (§7.1): the
    encoded instruction image and the table contents are "loaded at the
    same time as the application code upload", i.e. shipped together as
    one flashable artifact.

    The format is a simple line-oriented text file:
    {v
      POWERCODE-FIRMWARE v1
      k <block size>
      functions <n>
      <truth-table index per supported gate>
      image <n words>
      <8-digit hex word per line>
      tt <n entries>
      <index> <E:0|1> <CT> <32 hex digits: gate index per line, line 0 first>
      bbit <n entries>
      <pc> <tt base>
      end
    v} *)

exception Parse_error of string

(** [to_string system] serialises a complete decode system. *)
val to_string : Reprogram.system -> string

(** [of_string text] rebuilds the system (fresh tables, programmed to the
    recorded contents).  Raises {!Parse_error} on malformed input. *)
val of_string : string -> Reprogram.system

(** [restore_program system] statically decodes the stored image back to an
    executable program, walking the TT/BBIT exactly as the fetch hardware
    would — what the processor "sees" after decode.  Raises
    [Isa.Word.Unknown_instruction] if the bundle is corrupt. *)
val restore_program : Reprogram.system -> Isa.Program.t
