lib/pipeline/evaluate.mli: Format Isa Workloads
