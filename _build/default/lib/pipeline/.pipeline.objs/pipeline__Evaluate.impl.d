lib/pipeline/evaluate.ml: Array Bitutil Buspower Bytes Cfg Char Format Hardware Isa List Machine Minic Powercode Workloads
