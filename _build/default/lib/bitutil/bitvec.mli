(** Fixed-length bit vectors.

    A [t] is an immutable sequence of bits indexed from 0.  Index 0 is the
    {e first} bit in stream order (the earliest bit fetched on a bus line);
    when a vector is rendered as a string the first bit is printed rightmost,
    matching the paper's convention of writing block words with the earliest
    bit on the right. *)

type t

(** [create n] is a vector of [n] zero bits.  Raises [Invalid_argument] if
    [n < 0]. *)
val create : int -> t

(** [length v] is the number of bits in [v]. *)
val length : t -> int

(** [get v i] is bit [i].  Raises [Invalid_argument] if out of range. *)
val get : t -> int -> bool

(** [set v i b] is a copy of [v] with bit [i] set to [b]. *)
val set : t -> int -> bool -> t

(** [init n f] is the vector whose bit [i] is [f i]. *)
val init : int -> (int -> bool) -> t

(** [of_list bits] has bit [i] equal to [List.nth bits i]. *)
val of_list : bool list -> t

(** [to_list v] lists the bits of [v] in index order. *)
val to_list : t -> bool list

(** [of_int ~width n] is the [width]-bit vector whose bit [i] is bit [i] of
    [n] (so the string rendering equals the usual binary notation of [n]).
    Raises [Invalid_argument] if [width] exceeds 62 or [n] does not fit. *)
val of_int : width:int -> int -> t

(** [to_int v] interprets [v] as a binary number with bit [i] weighted
    [2^i].  Raises [Invalid_argument] if [length v > 62]. *)
val to_int : t -> int

(** [of_string s] parses ['0']['1'] characters; the {e rightmost} character
    becomes bit 0.  Raises [Invalid_argument] on other characters. *)
val of_string : string -> t

(** [to_string v] renders [v] with bit 0 rightmost. *)
val to_string : t -> string

(** [append a b] is the bits of [a] followed by the bits of [b]. *)
val append : t -> t -> t

(** [sub v ~pos ~len] is bits [pos .. pos+len-1] of [v]. *)
val sub : t -> pos:int -> len:int -> t

(** [transitions v] counts positions [i] with [get v i <> get v (i+1)] —
    the number of bus transitions caused by shifting [v] out serially. *)
val transitions : t -> int

(** [popcount v] is the number of set bits. *)
val popcount : t -> int

(** [hamming a b] is the number of positions where [a] and [b] differ.
    Raises [Invalid_argument] on length mismatch. *)
val hamming : t -> t -> int

(** [map2 f a b] applies [f] bitwise.  Raises on length mismatch. *)
val map2 : (bool -> bool -> bool) -> t -> t -> t

(** [lnot_ v] flips every bit. *)
val lnot_ : t -> t

(** [equal a b] is structural equality (same length, same bits). *)
val equal : t -> t -> bool

(** [compare] is a total order compatible with [equal]. *)
val compare : t -> t -> int

(** [fold f init v] folds over bits in index order. *)
val fold : ('a -> bool -> 'a) -> 'a -> t -> 'a

(** [pp] prints as {!to_string}. *)
val pp : Format.formatter -> t -> unit
