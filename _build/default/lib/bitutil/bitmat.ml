type t = { width : int; words : int array }

let of_words ~width words =
  if width < 1 || width > 62 then invalid_arg "Bitmat.of_words: bad width";
  Array.iter
    (fun w ->
      if w < 0 || (width < 62 && w lsr width <> 0) then
        invalid_arg "Bitmat.of_words: word does not fit width")
    words;
  { width; words = Array.copy words }

let width m = m.width
let rows m = Array.length m.words

let word m i =
  if i < 0 || i >= rows m then invalid_arg "Bitmat.word: row out of range";
  m.words.(i)

let words m = Array.copy m.words

let column m b =
  if b < 0 || b >= m.width then invalid_arg "Bitmat.column: line out of range";
  Bitvec.init (rows m) (fun i -> m.words.(i) lsr b land 1 = 1)

let of_columns cols =
  let width = Array.length cols in
  if width = 0 then invalid_arg "Bitmat.of_columns: no columns";
  let n = Bitvec.length cols.(0) in
  Array.iter
    (fun c ->
      if Bitvec.length c <> n then invalid_arg "Bitmat.of_columns: ragged")
    cols;
  let words =
    Array.init n (fun i ->
        let w = ref 0 in
        for b = width - 1 downto 0 do
          w := (!w lsl 1) lor (if Bitvec.get cols.(b) i then 1 else 0)
        done;
        !w)
  in
  { width; words }

let column_transitions m =
  let counts = Array.make m.width 0 in
  for i = 0 to rows m - 2 do
    let diff = m.words.(i) lxor m.words.(i + 1) in
    for b = 0 to m.width - 1 do
      if diff lsr b land 1 = 1 then counts.(b) <- counts.(b) + 1
    done
  done;
  counts

let transitions m =
  let total = ref 0 in
  for i = 0 to rows m - 2 do
    let diff = m.words.(i) lxor m.words.(i + 1) in
    let rec pop x acc = if x = 0 then acc else pop (x lsr 1) (acc + (x land 1)) in
    total := !total + pop diff 0
  done;
  !total
