(* Bits are stored in a Bytes.t, one bit per position, packed 8 per byte.
   Vectors are small (block words, 32-bit columns), so simplicity beats
   bit-twiddling cleverness. *)

type t = { len : int; data : Bytes.t }

let bytes_for len = (len + 7) / 8

let create len =
  if len < 0 then invalid_arg "Bitvec.create: negative length";
  { len; data = Bytes.make (bytes_for len) '\000' }

let length v = v.len

let check v i =
  if i < 0 || i >= v.len then invalid_arg "Bitvec: index out of range"

let get v i =
  check v i;
  Char.code (Bytes.get v.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set v i b =
  check v i;
  let data = Bytes.copy v.data in
  let byte = Char.code (Bytes.get data (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if b then byte lor mask else byte land lnot mask in
  Bytes.set data (i lsr 3) (Char.chr (byte land 0xff));
  { v with data }

let init n f =
  let v = ref (create n) in
  for i = 0 to n - 1 do
    if f i then v := set !v i true
  done;
  !v

let of_list bits =
  let arr = Array.of_list bits in
  init (Array.length arr) (fun i -> arr.(i))

let to_list v =
  List.init v.len (fun i -> get v i)

let of_int ~width n =
  if width < 0 || width > 62 then invalid_arg "Bitvec.of_int: bad width";
  if n < 0 || (width < 62 && n lsr width <> 0) then
    invalid_arg "Bitvec.of_int: value does not fit";
  init width (fun i -> n lsr i land 1 = 1)

let to_int v =
  if v.len > 62 then invalid_arg "Bitvec.to_int: too long";
  let r = ref 0 in
  for i = v.len - 1 downto 0 do
    r := (!r lsl 1) lor (if get v i then 1 else 0)
  done;
  !r

let of_string s =
  let n = String.length s in
  init n (fun i ->
      match s.[n - 1 - i] with
      | '0' -> false
      | '1' -> true
      | c -> invalid_arg (Printf.sprintf "Bitvec.of_string: bad char %c" c))

let to_string v =
  String.init v.len (fun i -> if get v (v.len - 1 - i) then '1' else '0')

let append a b =
  init (a.len + b.len) (fun i -> if i < a.len then get a i else get b (i - a.len))

let sub v ~pos ~len =
  if pos < 0 || len < 0 || pos + len > v.len then invalid_arg "Bitvec.sub";
  init len (fun i -> get v (pos + i))

let transitions v =
  let n = ref 0 in
  for i = 0 to v.len - 2 do
    if get v i <> get v (i + 1) then incr n
  done;
  !n

let popcount v =
  let n = ref 0 in
  for i = 0 to v.len - 1 do
    if get v i then incr n
  done;
  !n

let check_same a b =
  if a.len <> b.len then invalid_arg "Bitvec: length mismatch"

let hamming a b =
  check_same a b;
  let n = ref 0 in
  for i = 0 to a.len - 1 do
    if get a i <> get b i then incr n
  done;
  !n

let map2 f a b =
  check_same a b;
  init a.len (fun i -> f (get a i) (get b i))

let lnot_ v = init v.len (fun i -> not (get v i))

let equal a b = a.len = b.len && Bytes.equal a.data b.data

let compare a b =
  match Int.compare a.len b.len with
  | 0 -> Bytes.compare a.data b.data
  | c -> c

let fold f init v =
  let acc = ref init in
  for i = 0 to v.len - 1 do
    acc := f !acc (get v i)
  done;
  !acc

let pp fmt v = Format.pp_print_string fmt (to_string v)
