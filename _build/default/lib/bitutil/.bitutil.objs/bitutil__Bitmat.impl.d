lib/bitutil/bitmat.ml: Array Bitvec
