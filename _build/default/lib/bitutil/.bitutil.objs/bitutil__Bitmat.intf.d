lib/bitutil/bitmat.mli: Bitvec
