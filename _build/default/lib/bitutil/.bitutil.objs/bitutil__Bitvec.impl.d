lib/bitutil/bitvec.ml: Array Bytes Char Format Int List Printf String
