lib/bitutil/bitvec.mli: Format
