(** Dynamic execution profiles.

    The paper's flow analyses the application offline, pinpoints the major
    loops and encodes only those; the profile supplies the block weights
    that drive that selection. *)

type t

(** [collect ?max_instructions program] runs the program to completion on a
    fresh machine state, counting fetches per instruction. *)
val collect :
  ?max_instructions:int -> Isa.Program.t -> t * Machine.Cpu.result

(** [of_counts counts] wraps precollected per-instruction fetch counts. *)
val of_counts : int array -> t

(** [instruction_count t i] is the number of times instruction [i] was
    fetched. *)
val instruction_count : t -> int -> int

(** [block_weight t block] is the execution count of the block (the fetch
    count of its first instruction). *)
val block_weight : t -> Block.t -> int

(** [block_fetches t block] is the total fetches spent inside the block. *)
val block_fetches : t -> Block.t -> int

(** [total t] is the total dynamic instruction count. *)
val total : t -> int

(** [hot_blocks t blocks] sorts blocks by {!block_fetches}, hottest first;
    never-executed blocks are dropped. *)
val hot_blocks : t -> Block.t array -> Block.t list

(** [coverage t blocks subset] is the fraction of all fetches spent in
    [subset] — how much of the run the encoded region captures. *)
val coverage : t -> Block.t list -> float
