(** Dominator analysis over the block graph (iterative bitset algorithm).

    Block [d] dominates block [b] when every path from the entry to [b]
    passes through [d].  Unreachable blocks are dominated by every block by
    convention and are reported by {!reachable}. *)

type t

(** [compute blocks] runs the analysis; entry is block 0. *)
val compute : Block.t array -> t

(** [dominates t ~dom ~sub] — does block [dom] dominate block [sub]? *)
val dominates : t -> dom:int -> sub:int -> bool

(** [dominators t b] lists the dominators of [b] in index order
    (includes [b] itself). *)
val dominators : t -> int -> int list

(** [immediate t b] is the immediate dominator of [b]; [None] for the entry
    and for unreachable blocks. *)
val immediate : t -> int -> int option

(** [reachable t b] — is [b] reachable from the entry? *)
val reachable : t -> int -> bool
