type terminator =
  | Fallthrough
  | Branch of { target : int; fallthrough : int }
  | Jump of { target : int }
  | Indirect
  | Exit

type t = {
  index : int;
  start : int;
  len : int;
  terminator : terminator;
  succs : int list;
  preds : int list;
}

let control_target insns i =
  let insn = insns.(i) in
  match Isa.Insn.branch_offset insn with
  | Some off -> Some (i + 1 + off)
  | None -> Isa.Insn.jump_target insn

let check_target n i target =
  if target < 0 || target >= n then
    invalid_arg
      (Printf.sprintf
         "Cfg.Block.partition: instruction %d targets %d outside program" i
         target)

let partition insns =
  let n = Array.length insns in
  if n = 0 then invalid_arg "Cfg.Block.partition: empty program";
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun i insn ->
      (match control_target insns i with
      | Some target ->
          check_target n i target;
          leader.(target) <- true
      | None -> ());
      if Isa.Insn.is_branch insn || Isa.Insn.is_jump insn then
        if i + 1 < n then leader.(i + 1) <- true)
    insns;
  (* Collect block extents in address order. *)
  let starts = ref [] in
  for i = n - 1 downto 0 do
    if leader.(i) then starts := i :: !starts
  done;
  let starts = Array.of_list !starts in
  let nb = Array.length starts in
  let block_of_insn = Array.make n 0 in
  Array.iteri
    (fun bi s ->
      let e = if bi + 1 < nb then starts.(bi + 1) else n in
      for i = s to e - 1 do
        block_of_insn.(i) <- bi
      done)
    starts;
  let terminator_of bi =
    let e = if bi + 1 < nb then starts.(bi + 1) else n in
    let last = e - 1 in
    let insn = insns.(last) in
    if Isa.Insn.is_branch insn then
      let target =
        match control_target insns last with Some t -> t | None -> assert false
      in
      if last + 1 < n then Branch { target; fallthrough = last + 1 }
      else Jump { target }
    else if Isa.Insn.is_jump insn then
      match Isa.Insn.jump_target insn with
      | Some target -> Jump { target }
      | None -> Indirect
    else if last + 1 < n then Fallthrough
    else Exit
  in
  let succ_insns bi =
    match terminator_of bi with
    | Branch { target; fallthrough } -> [ target; fallthrough ]
    | Jump { target } -> [ target ]
    | Fallthrough ->
        assert (bi + 1 < nb);
        [ starts.(bi + 1) ]
    | Indirect | Exit -> []
  in
  let preds = Array.make nb [] in
  let succs =
    Array.init nb (fun bi ->
        let ss =
          succ_insns bi
          |> List.map (fun i -> block_of_insn.(i))
          |> List.sort_uniq Int.compare
        in
        List.iter (fun s -> preds.(s) <- bi :: preds.(s)) ss;
        ss)
  in
  Array.init nb (fun bi ->
      let s = starts.(bi) in
      let e = if bi + 1 < nb then starts.(bi + 1) else n in
      {
        index = bi;
        start = s;
        len = e - s;
        terminator = terminator_of bi;
        succs = succs.(bi);
        preds = List.sort_uniq Int.compare preds.(bi);
      })

let block_at blocks index =
  match
    Array.fold_left
      (fun acc b ->
        if index >= b.start && index < b.start + b.len then Some b else acc)
      None blocks
  with
  | Some b -> b
  | None -> raise Not_found

let entry_of blocks = blocks.(0)

let pp fmt b =
  let term =
    match b.terminator with
    | Fallthrough -> "fallthrough"
    | Branch { target; fallthrough } ->
        Printf.sprintf "branch->%d/%d" target fallthrough
    | Jump { target } -> Printf.sprintf "jump->%d" target
    | Indirect -> "indirect"
    | Exit -> "exit"
  in
  Format.fprintf fmt "B%d [%d..%d] %s succs=%s" b.index b.start
    (b.start + b.len - 1) term
    (String.concat "," (List.map string_of_int b.succs))
