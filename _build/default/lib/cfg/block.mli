(** Basic-block partitioning and the control-flow graph.

    Leaders are instruction 0, every branch/jump target, and every
    instruction following a control transfer.  A block never extends past a
    control transfer, so the power encoding applied per block can never be
    entered or left mid-chain (paper §7.1).  Indirect jumps ([jr]/[jalr])
    terminate a block with no static successors. *)

type terminator =
  | Fallthrough  (** block ends because the next instruction is a leader *)
  | Branch of { target : int; fallthrough : int }
  | Jump of { target : int }  (** [j]/[jal]; [jal] also links [$ra] *)
  | Indirect  (** [jr]/[jalr] *)
  | Exit  (** last instruction of the program with no transfer *)

type t = {
  index : int;  (** position in the block array *)
  start : int;  (** word index of the first instruction *)
  len : int;  (** number of instructions, [>= 1] *)
  terminator : terminator;
  succs : int list;  (** successor block indices, sorted *)
  preds : int list;  (** predecessor block indices, sorted *)
}

(** [partition insns] is the block array in address order.
    Raises [Invalid_argument] on an empty program or when a control
    transfer targets an out-of-range instruction. *)
val partition : Isa.Insn.t array -> t array

(** [block_at blocks index] is the block containing instruction [index].
    Raises [Not_found] when out of range. *)
val block_at : t array -> int -> t

(** [entry_of blocks] is the block starting at instruction 0. *)
val entry_of : t array -> t

val pp : Format.formatter -> t -> unit
