type t = { counts : int array; total : int }

let of_counts counts =
  { counts = Array.copy counts; total = Array.fold_left ( + ) 0 counts }

let collect ?max_instructions program =
  let counts = Array.make (Isa.Program.length program) 0 in
  let state = Machine.Cpu.create_state () in
  let on_fetch ~pc = counts.(pc) <- counts.(pc) + 1 in
  let result = Machine.Cpu.run ?max_instructions ~on_fetch program state in
  (of_counts counts, result)

let instruction_count t i = t.counts.(i)
let block_weight t (b : Block.t) = t.counts.(b.start)

let block_fetches t (b : Block.t) =
  let sum = ref 0 in
  for i = b.start to b.start + b.len - 1 do
    sum := !sum + t.counts.(i)
  done;
  !sum

let total t = t.total

let hot_blocks t blocks =
  Array.to_list blocks
  |> List.filter (fun b -> block_fetches t b > 0)
  |> List.stable_sort (fun a b -> Int.compare (block_fetches t b) (block_fetches t a))

let coverage t subset =
  if t.total = 0 then 0.0
  else
    let inside =
      List.fold_left (fun acc b -> acc + block_fetches t b) 0 subset
    in
    float_of_int inside /. float_of_int t.total
