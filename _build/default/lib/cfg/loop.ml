type t = {
  header : int;
  body : int list;
  back_edges : (int * int) list;
  depth : int;
}

let contains loop b = List.mem b loop.body

(* Natural loop of back edge (latch, header): header plus everything that
   reaches latch backwards without crossing header. *)
let natural_body blocks ~header ~latch =
  let in_loop = Hashtbl.create 16 in
  Hashtbl.add in_loop header ();
  let rec pull b =
    if not (Hashtbl.mem in_loop b) then begin
      Hashtbl.add in_loop b ();
      List.iter pull blocks.(b).Block.preds
    end
  in
  pull latch;
  Hashtbl.fold (fun b () acc -> b :: acc) in_loop []
  |> List.sort Int.compare

let detect blocks doms =
  let back_edges = ref [] in
  Array.iter
    (fun blk ->
      List.iter
        (fun succ ->
          if
            Dominator.reachable doms blk.Block.index
            && Dominator.dominates doms ~dom:succ ~sub:blk.Block.index
          then back_edges := (blk.Block.index, succ) :: !back_edges)
        blk.Block.succs)
    blocks;
  (* Merge loops that share a header. *)
  let by_header = Hashtbl.create 8 in
  List.iter
    (fun (latch, header) ->
      let existing =
        Option.value (Hashtbl.find_opt by_header header) ~default:[]
      in
      Hashtbl.replace by_header header ((latch, header) :: existing))
    !back_edges;
  let loops =
    Hashtbl.fold
      (fun header edges acc ->
        let body =
          List.fold_left
            (fun acc (latch, _) ->
              List.sort_uniq Int.compare
                (natural_body blocks ~header ~latch @ acc))
            [] edges
        in
        { header; body; back_edges = List.sort compare edges; depth = 1 } :: acc)
      by_header []
  in
  let loops = List.sort (fun a b -> Int.compare a.header b.header) loops in
  (* Nesting depth: number of loops whose body contains this header. *)
  List.map
    (fun loop ->
      let depth =
        List.length (List.filter (fun outer -> contains outer loop.header) loops)
      in
      { loop with depth })
    loops

let innermost loops b =
  loops
  |> List.filter (fun loop -> contains loop b)
  |> List.fold_left
       (fun acc loop ->
         match acc with
         | None -> Some loop
         | Some best -> if loop.depth > best.depth then Some loop else acc)
       None

let pp fmt loop =
  Format.fprintf fmt "loop header=B%d depth=%d body={%s}" loop.header
    loop.depth
    (String.concat "," (List.map string_of_int loop.body))
