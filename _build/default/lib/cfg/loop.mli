(** Natural-loop detection.

    A back edge is an edge [u -> h] where [h] dominates [u]; its natural
    loop is [h] plus every block that can reach [u] without passing through
    [h].  Loops sharing a header are merged, matching the usual definition
    used when talking about "the application loop". *)

type t = {
  header : int;  (** loop header block index *)
  body : int list;  (** all member blocks including the header, sorted *)
  back_edges : (int * int) list;  (** [(latch, header)] pairs *)
  depth : int;  (** nesting depth, outermost = 1 *)
}

(** [detect blocks doms] finds all natural loops, sorted by header index. *)
val detect : Block.t array -> Dominator.t -> t list

(** [innermost loops b] is the deepest loop containing block [b]. *)
val innermost : t list -> int -> t option

(** [contains loop b] — is block [b] in the loop body? *)
val contains : t -> int -> bool

val pp : Format.formatter -> t -> unit
