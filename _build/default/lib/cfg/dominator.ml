(* Dominator sets as bitsets packed in int arrays: dom.(b) is the set of
   blocks dominating b.  The classic iterative data-flow algorithm:
   dom(entry) = {entry}; dom(b) = {b} ∪ ⋂ dom(preds b); iterate to fixpoint. *)

type bitset = int array

type t = {
  dom : bitset array;
  reach : bool array;
  n : int;
}

let words_for n = (n + 62) / 63

let set bs i = bs.(i / 63) <- bs.(i / 63) lor (1 lsl (i mod 63))
let mem bs i = bs.(i / 63) lsr (i mod 63) land 1 = 1
let full n = Array.make (words_for n) (-1)
let inter a b = Array.map2 ( land ) a b
let equal_bs a b = Array.for_all2 Int.equal a b

let compute blocks =
  let n = Array.length blocks in
  (* reachability first, so unreachable blocks don't poison the meet *)
  let reach = Array.make n false in
  let rec dfs b =
    if not reach.(b) then begin
      reach.(b) <- true;
      List.iter dfs blocks.(b).Block.succs
    end
  in
  dfs 0;
  let dom = Array.init n (fun _ -> full n) in
  let entry_only = Array.make (words_for n) 0 in
  set entry_only 0;
  dom.(0) <- entry_only;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iteri
      (fun b blk ->
        if b <> 0 && reach.(b) then begin
          let reachable_preds =
            List.filter (fun p -> reach.(p)) blk.Block.preds
          in
          let meet =
            match reachable_preds with
            | [] -> full n
            | p :: ps ->
                List.fold_left (fun acc q -> inter acc dom.(q)) dom.(p) ps
          in
          let updated = Array.copy meet in
          set updated b;
          if not (equal_bs updated dom.(b)) then begin
            dom.(b) <- updated;
            changed := true
          end
        end)
      blocks
  done;
  { dom; reach; n }

let check t b =
  if b < 0 || b >= t.n then invalid_arg "Dominator: block index out of range"

let dominates t ~dom ~sub =
  check t dom;
  check t sub;
  mem t.dom.(sub) dom

let dominators t b =
  check t b;
  List.filter (fun d -> mem t.dom.(b) d) (List.init t.n Fun.id)

let reachable t b =
  check t b;
  t.reach.(b)

let immediate t b =
  check t b;
  if b = 0 || not t.reach.(b) then None
  else
    (* The immediate dominator is the strict dominator dominated by every
       other strict dominator. *)
    let strict = List.filter (fun d -> d <> b) (dominators t b) in
    List.find_opt
      (fun d ->
        List.for_all (fun d' -> d' = d || mem t.dom.(d) d') strict)
      strict
