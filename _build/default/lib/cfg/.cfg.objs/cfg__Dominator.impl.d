lib/cfg/dominator.ml: Array Block Fun Int List
