lib/cfg/block.ml: Array Format Int Isa List Printf String
