lib/cfg/loop.mli: Block Dominator Format
