lib/cfg/loop.ml: Array Block Dominator Format Hashtbl Int List Option String
