lib/cfg/dominator.mli: Block
