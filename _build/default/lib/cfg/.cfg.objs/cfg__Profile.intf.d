lib/cfg/profile.mli: Block Isa Machine
