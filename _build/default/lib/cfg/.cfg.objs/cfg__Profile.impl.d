lib/cfg/profile.ml: Array Block Int Isa List Machine
