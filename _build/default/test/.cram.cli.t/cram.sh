  $ ../bin/powercode_cli.exe tables -k 3
  $ ../bin/powercode_cli.exe cost -k 7 --entries 16
  $ ../bin/powercode_cli.exe subset
  $ ../bin/powercode_cli.exe encode ../examples/programs/countdown.s -k 4 --firmware out.fw > /dev/null
  $ ../bin/powercode_cli.exe restore out.fw --run
