module Lexer = Minic.Lexer
module Parser = Minic.Parser
module Typecheck = Minic.Typecheck
module Compile = Minic.Compile
module Ast = Minic.Ast

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ---- lexer ---------------------------------------------------------------- *)

let toks src = List.map fst (Lexer.tokenize src)

let test_lex_basic () =
  check_int "token count" 6 (List.length (toks "int x = 1 ;"));
  match toks "x = 3.5;" with
  | [ Lexer.IDENT "x"; Lexer.ASSIGN; Lexer.FLOAT_LIT f; Lexer.SEMI; Lexer.EOF ]
    ->
      Alcotest.(check (float 1e-9)) "float lit" 3.5 f
  | _ -> Alcotest.fail "unexpected tokens"

let test_lex_comments () =
  check_int "line comment" 1 (List.length (toks "// all gone"));
  check_int "block comment" 1 (List.length (toks "/* x = 1; */"));
  match toks "a /* mid */ b" with
  | [ Lexer.IDENT "a"; Lexer.IDENT "b"; Lexer.EOF ] -> ()
  | _ -> Alcotest.fail "comment not skipped"

let test_lex_operators () =
  match toks "<= >= == != && || !" with
  | [ Lexer.LE; Lexer.GE; Lexer.EQ; Lexer.NE; Lexer.ANDAND; Lexer.OROR;
      Lexer.BANG; Lexer.EOF ] ->
      ()
  | _ -> Alcotest.fail "operators"

let test_lex_line_numbers () =
  let withlines = Lexer.tokenize "a\nb\n\nc" in
  let line_of name = List.assoc (Lexer.IDENT name) withlines in
  check_int "a" 1 (line_of "a");
  check_int "b" 2 (line_of "b");
  check_int "c" 4 (line_of "c")

let test_lex_error () =
  try
    ignore (Lexer.tokenize "x @ y");
    Alcotest.fail "expected error"
  with Lexer.Lex_error { line; _ } -> check_int "line" 1 line

(* ---- parser --------------------------------------------------------------- *)

let test_parse_precedence () =
  let e = Parser.parse_expr "1 + 2 * 3" in
  match e.Ast.desc with
  | Ast.Binop (Ast.Add, { Ast.desc = Ast.Int_lit 1; _ },
               { Ast.desc = Ast.Binop (Ast.Mul, _, _); _ }) ->
      ()
  | _ -> Alcotest.fail "precedence wrong"

let test_parse_associativity () =
  let e = Parser.parse_expr "10 - 4 - 3" in
  match e.Ast.desc with
  | Ast.Binop (Ast.Sub, { Ast.desc = Ast.Binop (Ast.Sub, _, _); _ },
               { Ast.desc = Ast.Int_lit 3; _ }) ->
      ()
  | _ -> Alcotest.fail "associativity wrong"

let test_parse_program_shape () =
  let p =
    Parser.parse
      "int n;\nfloat a[4][5];\nint main() { int i; i = 0; return i; }"
  in
  check_int "globals" 2 (List.length p.Ast.globals);
  check_int "funcs" 1 (List.length p.Ast.funcs);
  let arr = List.nth p.Ast.globals 1 in
  Alcotest.(check (list int)) "dims" [ 4; 5 ] arr.Ast.g_dims

let test_parse_error_reports_line () =
  try
    ignore (Parser.parse "int main() {\n  int x\n}");
    Alcotest.fail "expected error"
  with Parser.Parse_error { line; _ } ->
    Alcotest.(check bool) "line in range" true (line >= 2 && line <= 3)

(* ---- typechecker ----------------------------------------------------------- *)

let check_ok src = Typecheck.check (Parser.parse src)

let check_rejected name src =
  match Typecheck.check (Parser.parse src) with
  | () -> Alcotest.failf "%s: expected type error" name
  | exception Typecheck.Type_error _ -> ()

let test_typecheck_accepts () =
  check_ok "int main() { int i; i = 1 + 2 * 3; return i; }";
  check_ok "float g; int main() { g = 1.5 + 2; return 0; }";
  check_ok
    "float a[3]; int main() { int i; i = 0; a[i] = itof(i) * 2.0; return 0; }";
  check_ok
    "int f(int x, float y) { return x + ftoi(y); } int main() { return f(1, 2.0); }";
  check_ok "void p() { print_int(3); } int main() { p(); return 0; }"

let test_typecheck_rejects () =
  check_rejected "undefined var" "int main() { x = 1; return 0; }";
  check_rejected "undefined fn" "int main() { return f(1); }";
  check_rejected "float to int" "int main() { int i; i = 1.5; return 0; }";
  check_rejected "float mod" "int main() { int i; i = ftoi(1.5 % 2.0); return 0; }";
  check_rejected "index count" "int a[3][3]; int main() { return a[0]; }";
  check_rejected "float index" "int a[3]; int main() { return a[1.0]; }";
  check_rejected "arity" "int f(int x) { return x; } int main() { return f(1,2); }";
  check_rejected "void in expr" "void p() { } int main() { return p(); }";
  check_rejected "no main" "int f() { return 0; }";
  check_rejected "main with params" "int main(int x) { return x; }";
  check_rejected "duplicate global" "int x; float x; int main() { return 0; }";
  check_rejected "duplicate local" "int main() { int i; int i; return 0; }";
  check_rejected "missing return value" "int main() { return; }"

(* ---- end-to-end execution --------------------------------------------------- *)

let run_src src =
  let c = Compile.compile src in
  let state = Machine.Cpu.create_state () in
  let r = Machine.Cpu.run c.Compile.program state in
  (r, Machine.Cpu.output state)

let run_output src = snd (run_src src)

let test_factorial () =
  let src =
    {|
      int fact(int n) {
        if (n <= 1) { return 1; }
        return n * fact(n - 1);
      }
      int main() { print_int(fact(10)); return 0; }
    |}
  in
  check_string "10!" "3628800" (run_output src)

let test_gcd_loop () =
  let src =
    {|
      int main() {
        int a; int b; int t;
        a = 462; b = 1071;
        while (b != 0) { t = b; b = a % b; a = t; }
        print_int(a);
        return 0;
      }
    |}
  in
  check_string "gcd" "21" (run_output src)

let test_arrays_2d () =
  let src =
    {|
      int m[3][4];
      int main() {
        int i; int j; int s;
        for (i = 0; i < 3; i = i + 1) {
          for (j = 0; j < 4; j = j + 1) {
            m[i][j] = i * 10 + j;
          }
        }
        s = 0;
        for (i = 0; i < 3; i = i + 1) {
          for (j = 0; j < 4; j = j + 1) {
            s = s + m[i][j];
          }
        }
        print_int(s);
        return 0;
      }
    |}
  in
  check_string "sum" "138" (run_output src)

let test_float_math () =
  let src =
    {|
      int main() {
        float x;
        x = 2.0;
        x = sqrtf(x * 8.0);
        x = fabs(0.0 - x);
        print_float(x / 2.0);
        return 0;
      }
    |}
  in
  check_string "float chain" "2" (run_output src)

let test_mixed_promotion () =
  check_string "int promoted" "7.5"
    (run_output "int main() { print_float(2.5 * 3); return 0; }")

let test_short_circuit () =
  let src =
    {|
      int main() {
        int zero; int ok;
        zero = 0;
        ok = 1;
        if (zero != 0 && 10 / zero > 0) { ok = 0; }
        if (zero == 0 || 10 / zero > 0) { ok = ok + 10; }
        print_int(ok);
        return 0;
      }
    |}
  in
  check_string "short circuit" "11" (run_output src)

let test_else_if_chain () =
  let src =
    {|
      int classify(int x) {
        if (x < 0) { return 0 - 1; }
        else if (x == 0) { return 0; }
        else { return 1; }
      }
      int main() {
        print_int(classify(0 - 5));
        print_int(classify(0));
        print_int(classify(5));
        return 0;
      }
    |}
  in
  check_string "chain" "-101" (run_output src)

let test_call_spill () =
  let src =
    {|
      int f(int x) { return x + 1; }
      int main() {
        int a;
        a = 100 + f(10) * 2 + f(f(1));
        print_int(a);
        return 0;
      }
    |}
  in
  check_string "spill" "125" (run_output src)

let test_float_args () =
  let src =
    {|
      float mix(float a, float b, int w) {
        if (w == 1) { return a; }
        return b;
      }
      int main() {
        print_float(mix(1.5, 2.5, 1));
        print_char(32);
        print_float(mix(1.5, 2.5, 0));
        return 0;
      }
    |}
  in
  check_string "float args" "1.5 2.5" (run_output src)

let test_exit_code_from_main () =
  let r, _ = run_src "int main() { return 42; }" in
  check_int "exit" 42 r.Machine.Cpu.exit_code

let test_for_loop_empty_sections () =
  let src =
    {|
      int main() {
        int i;
        i = 0;
        for (; i < 5;) { i = i + 2; }
        print_int(i);
        return 0;
      }
    |}
  in
  check_string "sections" "6" (run_output src)

let test_ftoi_truncates () =
  check_string "trunc positive" "3"
    (run_output "int main() { print_int(ftoi(3.9)); return 0; }");
  check_string "trunc negative" "-3"
    (run_output "int main() { print_int(ftoi(0.0 - 3.9)); return 0; }")

let test_globals_shared_across_functions () =
  let src =
    {|
      int counter;
      void bump() { counter = counter + 1; }
      int main() {
        counter = 0;
        bump(); bump(); bump();
        print_int(counter);
        return 0;
      }
    |}
  in
  check_string "global state" "3" (run_output src)

let test_left_deep_ok () =
  let nest = "((((((((1+2)+3)+4)+5)+6)+7)+8)+9)" in
  let src = Printf.sprintf "int main() { print_int(%s); return 0; }" nest in
  check_string "left deep" "45" (run_output src)

let test_right_deep_expression_errors () =
  (* at -O0 a right-leaning nest really does exhaust the register stack; at
     -O1 constant folding collapses it first (checked too) *)
  let rec build n = if n = 0 then "1" else Printf.sprintf "(1 + %s)" (build (n - 1)) in
  let src = Printf.sprintf "int main() { return %s; }" (build 12) in
  (match Compile.compile ~opt:Compile.O0 src with
  | _ -> Alcotest.fail "expected codegen depth error at O0"
  | exception Minic.Codegen.Codegen_error _ -> ());
  let r, _ = run_src src in
  check_int "folded at O1" 13 r.Machine.Cpu.exit_code


(* break / continue, added after the first release *)
let test_break_continue () =
  let src =
    {|
      int main() {
        int i; int sum;
        sum = 0;
        for (i = 0; i < 100; i = i + 1) {
          if (i == 10) { break; }
          if (i % 2 == 1) { continue; }
          sum = sum + i;
        }
        print_int(sum);   // 0+2+4+6+8 = 20
        print_char(32);
        i = 0;
        while (1 == 1) {
          i = i + 1;
          if (i >= 7) { break; }
        }
        print_int(i);
        return 0;
      }
    |}
  in
  check_string "break/continue" "20 7" (run_output src)

let test_continue_runs_for_step () =
  (* continue in a for loop must still execute the step, or it would spin *)
  let src =
    {|
      int main() {
        int i; int hits;
        hits = 0;
        for (i = 0; i < 5; i = i + 1) {
          continue;
        }
        print_int(i);
        return 0;
      }
    |}
  in
  check_string "step still runs" "5" (run_output src)

let test_break_outside_loop_rejected () =
  check_rejected "break outside" "int main() { break; return 0; }";
  check_rejected "continue outside" "int main() { continue; return 0; }"


let () =
  Alcotest.run "minic"
    [
      ( "lexer",
        [
          Alcotest.test_case "basic" `Quick test_lex_basic;
          Alcotest.test_case "comments" `Quick test_lex_comments;
          Alcotest.test_case "operators" `Quick test_lex_operators;
          Alcotest.test_case "line numbers" `Quick test_lex_line_numbers;
          Alcotest.test_case "error" `Quick test_lex_error;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "associativity" `Quick test_parse_associativity;
          Alcotest.test_case "program shape" `Quick test_parse_program_shape;
          Alcotest.test_case "error line" `Quick test_parse_error_reports_line;
        ] );
      ( "typecheck",
        [
          Alcotest.test_case "accepts" `Quick test_typecheck_accepts;
          Alcotest.test_case "rejects" `Quick test_typecheck_rejects;
        ] );
      ( "execution",
        [
          Alcotest.test_case "factorial" `Quick test_factorial;
          Alcotest.test_case "gcd" `Quick test_gcd_loop;
          Alcotest.test_case "2d arrays" `Quick test_arrays_2d;
          Alcotest.test_case "float math" `Quick test_float_math;
          Alcotest.test_case "promotion" `Quick test_mixed_promotion;
          Alcotest.test_case "short circuit" `Quick test_short_circuit;
          Alcotest.test_case "else-if" `Quick test_else_if_chain;
          Alcotest.test_case "call spill" `Quick test_call_spill;
          Alcotest.test_case "float args" `Quick test_float_args;
          Alcotest.test_case "exit code" `Quick test_exit_code_from_main;
          Alcotest.test_case "for sections" `Quick test_for_loop_empty_sections;
          Alcotest.test_case "ftoi truncates" `Quick test_ftoi_truncates;
          Alcotest.test_case "globals" `Quick test_globals_shared_across_functions;
          Alcotest.test_case "left-deep ok" `Quick test_left_deep_ok;
          Alcotest.test_case "right-deep errors" `Quick
            test_right_deep_expression_errors;
          Alcotest.test_case "break/continue" `Quick test_break_continue;
          Alcotest.test_case "continue hits step" `Quick
            test_continue_runs_for_step;
          Alcotest.test_case "break outside rejected" `Quick
            test_break_outside_loop_rejected;
        ] );
    ]
