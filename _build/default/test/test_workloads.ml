let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let names = [ "mmul"; "sor"; "ej"; "fft"; "tri"; "lu" ]

let test_registry_complete () =
  Alcotest.(check (list string))
    "paper set" names
    (List.map (fun w -> w.Workloads.name) Workloads.paper_sized);
  Alcotest.(check (list string))
    "scaled set" names
    (List.map (fun w -> w.Workloads.name) Workloads.scaled)

let test_by_name () =
  let w = Workloads.by_name Workloads.scaled "fft" in
  check_string "found" "fft" w.Workloads.name;
  Alcotest.check_raises "missing" Not_found (fun () ->
      ignore (Workloads.by_name Workloads.scaled "nonesuch"))

let test_all_compile () =
  List.iter
    (fun w ->
      match Workloads.compile w with
      | _ -> ()
      | exception e ->
          Alcotest.failf "%s failed to compile: %s" w.Workloads.name
            (Option.value
               (Minic.Compile.describe_error e)
               ~default:(Printexc.to_string e)))
    (Workloads.paper_sized @ Workloads.scaled @ Workloads.extended)

let run w =
  let c = Workloads.compile w in
  let state = Machine.Cpu.create_state () in
  let r = Machine.Cpu.run c.Minic.Compile.program state in
  (r, Machine.Cpu.output state)

let test_scaled_run_and_print_finite () =
  List.iter
    (fun w ->
      let r, out = run w in
      check_bool (w.Workloads.name ^ " exits 0") true (r.Machine.Cpu.exit_code = 0);
      let value = float_of_string (String.trim out) in
      check_bool
        (w.Workloads.name ^ " checksum finite")
        true
        (Float.is_finite value))
    Workloads.scaled

let test_runs_deterministic () =
  List.iter
    (fun w ->
      let _, a = run w in
      let _, b = run w in
      check_string (w.Workloads.name ^ " deterministic") a b)
    Workloads.scaled

(* Reference checksum for the scaled mmul, computed independently in OCaml
   with single-precision rounding after every operation, exactly as the FP
   unit behaves. *)
let test_mmul_checksum_against_reference () =
  let n = 12 in
  let single x = Int32.float_of_bits (Int32.bits_of_float x) in
  let a = Array.make_matrix n n 0.0 and b = Array.make_matrix n n 0.0 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      a.(i).(j) <- single (float_of_int ((i - j) mod 5));
      b.(i).(j) <- single (float_of_int ((i + (2 * j)) mod 7))
    done
  done;
  let trace = ref 0.0 in
  for i = 0 to n - 1 do
    let s = ref 0.0 in
    for k = 0 to n - 1 do
      s := single (!s +. single (a.(i).(k) *. b.(k).(i)))
    done;
    trace := single (!trace +. !s)
  done;
  let _, out = run (Workloads.by_name Workloads.scaled "mmul") in
  let got = float_of_string (String.trim out) in
  Alcotest.(check (float 1e-3)) "trace" !trace got

let test_extended_run () =
  List.iter
    (fun w ->
      let r, out = run w in
      check_bool (w.Workloads.name ^ " exits 0") true
        (r.Machine.Cpu.exit_code = 0);
      let value = float_of_string (String.trim out) in
      check_bool (w.Workloads.name ^ " finite") true (Float.is_finite value);
      check_bool (w.Workloads.name ^ " nonzero") true (value > 0.0))
    Workloads.extended

let test_loops_exist () =
  (* every kernel must contain at least one natural loop; that is the whole
     premise of the paper *)
  List.iter
    (fun w ->
      let c = Workloads.compile w in
      let insns = Isa.Program.insns c.Minic.Compile.program in
      let blocks = Cfg.Block.partition insns in
      let doms = Cfg.Dominator.compute blocks in
      let loops = Cfg.Loop.detect blocks doms in
      check_bool (w.Workloads.name ^ " has loops") true (List.length loops > 0))
    Workloads.scaled

let test_paper_sizes_mentioned () =
  (* descriptions carry the paper's problem sizes *)
  let descr name =
    (Workloads.by_name Workloads.paper_sized name).Workloads.description
  in
  let contains hay needle =
    let lh = String.length hay and ln = String.length needle in
    let rec go i = i + ln <= lh && (String.sub hay i ln = needle || go (i + 1)) in
    go 0
  in
  check_bool "mmul 100" true (contains (descr "mmul") "100");
  check_bool "sor 256" true (contains (descr "sor") "256");
  check_bool "fft 256" true (contains (descr "fft") "256");
  check_bool "lu 128" true (contains (descr "lu") "128")

let () =
  Alcotest.run "workloads"
    [
      ( "registry",
        [
          Alcotest.test_case "complete" `Quick test_registry_complete;
          Alcotest.test_case "by_name" `Quick test_by_name;
          Alcotest.test_case "paper sizes" `Quick test_paper_sizes_mentioned;
        ] );
      ( "execution",
        [
          Alcotest.test_case "all compile" `Quick test_all_compile;
          Alcotest.test_case "scaled run" `Quick test_scaled_run_and_print_finite;
          Alcotest.test_case "deterministic" `Quick test_runs_deterministic;
          Alcotest.test_case "mmul reference checksum" `Quick
            test_mmul_checksum_against_reference;
          Alcotest.test_case "extended kernels run" `Quick test_extended_run;
          Alcotest.test_case "loops exist" `Quick test_loops_exist;
        ] );
    ]
