module Fold = Minic.Fold
module Parser = Minic.Parser
module Ast = Minic.Ast
module Compile = Minic.Compile

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let fold_expr src = (Fold.expr (Parser.parse_expr src)).Ast.desc

let test_int_arith () =
  (match fold_expr "256 - 1" with
  | Ast.Int_lit 255 -> ()
  | _ -> Alcotest.fail "256 - 1");
  (match fold_expr "2 * 3 + 4" with
  | Ast.Int_lit 10 -> ()
  | _ -> Alcotest.fail "2*3+4");
  (match fold_expr "7 % 3" with
  | Ast.Int_lit 1 -> ()
  | _ -> Alcotest.fail "7%3");
  match fold_expr "-5 + 1" with
  | Ast.Int_lit (-4) -> ()
  | _ -> Alcotest.fail "-5 + 1"

let test_unary () =
  (match fold_expr "-(4)" with
  | Ast.Int_lit (-4) -> ()
  | _ -> Alcotest.fail "neg");
  match fold_expr "!0" with
  | Ast.Int_lit 1 -> ()
  | _ -> Alcotest.fail "lnot"

let test_comparisons () =
  (match fold_expr "3 < 4" with
  | Ast.Int_lit 1 -> ()
  | _ -> Alcotest.fail "3<4");
  match fold_expr "3 == 4" with
  | Ast.Int_lit 0 -> ()
  | _ -> Alcotest.fail "3==4"

let test_float_single_rounding () =
  (* 0.1 +. 0.2 in doubles is not the single-precision result; folding must
     match the FP unit bit for bit *)
  match fold_expr "0.1 + 0.2" with
  | Ast.Float_lit v ->
      let expected =
        let s x = Int32.float_of_bits (Int32.bits_of_float x) in
        s (s 0.1 +. s 0.2)
      in
      Alcotest.(check (float 0.0)) "single rounded" expected v
  | _ -> Alcotest.fail "0.1+0.2"

let test_division_by_zero_left_alone () =
  (match fold_expr "1 / 0" with
  | Ast.Binop (Ast.Dvd, _, _) -> ()
  | _ -> Alcotest.fail "1/0 must not fold");
  match fold_expr "1 % 0" with
  | Ast.Binop (Ast.Mod, _, _) -> ()
  | _ -> Alcotest.fail "1%0 must not fold"

let test_short_circuit_literals () =
  (match fold_expr "0 && x" with
  | Ast.Int_lit 0 -> ()
  | _ -> Alcotest.fail "0 && x");
  (match fold_expr "3 || x" with
  | Ast.Int_lit 1 -> ()
  | _ -> Alcotest.fail "3 || x");
  (* a non-literal left side must survive *)
  match fold_expr "x && 0" with
  | Ast.Binop (Ast.Land, _, _) -> ()
  | _ -> Alcotest.fail "x && 0 kept"

let test_mixed_promote () =
  match fold_expr "1 + 0.5" with
  | Ast.Float_lit v -> Alcotest.(check (float 1e-7)) "promoted" 1.5 v
  | _ -> Alcotest.fail "1 + 0.5"

let test_casts () =
  (match fold_expr "itof(3)" with
  | Ast.Float_lit 3.0 -> ()
  | _ -> Alcotest.fail "itof");
  match fold_expr "ftoi(3.9)" with
  | Ast.Int_lit 3 -> ()
  | _ -> Alcotest.fail "ftoi truncates"

let test_nested_in_lvalue_indices () =
  let p = Parser.parse "int a[10]; int main() { a[2 + 3] = 1; return 0; }" in
  let folded = Fold.program p in
  match folded.Ast.funcs with
  | [ { Ast.f_body = { Ast.stmts = [ Ast.Assign (lv, _); _ ]; _ }; _ } ] -> (
      match lv.Ast.indices with
      | [ { Ast.desc = Ast.Int_lit 5; _ } ] -> ()
      | _ -> Alcotest.fail "index not folded")
  | _ -> Alcotest.fail "unexpected shape"

(* O0 and O1 must agree on every observable for tricky programs *)
let equivalence_sources =
  [
    ( "wraparound",
      "int main() { int x; x = 2147483647; print_int(x + 1); return 0; }" );
    ( "negative division",
      "int main() { print_int((0 - 7) / 2); print_int((0 - 7) % 2); return 0; }"
    );
    ( "float chain",
      {|
        float acc;
        int main() {
          int i;
          acc = 0.0;
          for (i = 0; i < 10; i = i + 1) { acc = acc + 0.1; }
          print_float(acc);
          return 0;
        }
      |} );
    ( "recursion with promoted vars",
      {|
        int fib(int n) {
          int a; int b;
          if (n < 2) { return n; }
          a = fib(n - 1);
          b = fib(n - 2);
          return a + b;
        }
        int main() { print_int(fib(15)); return 0; }
      |} );
    ( "shadowless sibling blocks",
      {|
        int main() {
          int t;
          t = 0;
          if (1 == 1) { int v; v = 5; t = t + v; }
          if (2 == 2) { int v; v = 7; t = t + v; }
          print_int(t);
          return 0;
        }
      |} );
  ]

let run_with opt src =
  let c = Compile.compile ~opt src in
  let state = Machine.Cpu.create_state () in
  let r = Machine.Cpu.run c.Compile.program state in
  (r.Machine.Cpu.exit_code, Machine.Cpu.output state)

let test_opt_levels_equivalent () =
  List.iter
    (fun (name, src) ->
      let e0, o0 = run_with Compile.O0 src in
      let e1, o1 = run_with Compile.O1 src in
      check_int (name ^ " exit") e0 e1;
      check_string (name ^ " output") o0 o1)
    equivalence_sources

let test_o1_not_larger () =
  (* O1 must never grow the static code of the kernels *)
  List.iter
    (fun w ->
      let c0 = Compile.compile ~opt:Compile.O0 w.Workloads.source in
      let c1 = Compile.compile ~opt:Compile.O1 w.Workloads.source in
      if
        Isa.Program.length c1.Compile.program
        > Isa.Program.length c0.Compile.program
      then
        Alcotest.failf "%s grew under O1 (%d -> %d)" w.Workloads.name
          (Isa.Program.length c0.Compile.program)
          (Isa.Program.length c1.Compile.program))
    Workloads.scaled

let test_o1_fewer_dynamic () =
  let w = Workloads.by_name Workloads.scaled "sor" in
  let run opt =
    let c = Compile.compile ~opt w.Workloads.source in
    let state = Machine.Cpu.create_state () in
    (Machine.Cpu.run c.Compile.program state).Machine.Cpu.instructions
  in
  Alcotest.(check bool)
    "O1 executes fewer instructions" true
    (run Compile.O1 < run Compile.O0)

let prop_fold_preserves_int_eval =
  (* random int expression trees: folding must preserve the 32-bit value *)
  let rec build depth st =
    if depth = 0 then string_of_int (QCheck.Gen.int_range (-50) 50 st)
    else
      let a = build (depth - 1) st and b = build (depth - 1) st in
      let op = QCheck.Gen.oneofl [ "+"; "-"; "*" ] st in
      Printf.sprintf "(%s %s %s)" a op b
  in
  let gen = QCheck.Gen.(int_range 1 4 >>= fun d -> map (fun s -> s) (build d)) in
  QCheck.Test.make ~name:"fold preserves evaluation" ~count:100
    (QCheck.make gen) (fun src_expr ->
      let src = Printf.sprintf "int main() { print_int(%s); return 0; }" src_expr in
      let _, o0 = run_with Compile.O0 src in
      let _, o1 = run_with Compile.O1 src in
      o0 = o1)


(* ---- differential fuzzing: random programs, O0 vs O1 ------------------------ *)

(* A tiny generator of well-typed Minic programs: integer globals and
   locals, bounded for loops, arithmetic with guarded division, nested ifs.
   Every generated program terminates and prints its state, so any O0/O1
   divergence is observable. *)
let gen_program =
  let open QCheck.Gen in
  let var_names = [ "a"; "b"; "c"; "d" ] in
  let rec gen_expr depth st =
    if depth = 0 then
      match int_bound 2 st with
      | 0 -> string_of_int (int_range (-9) 9 st)
      | 1 -> List.nth var_names (int_bound 3 st)
      | _ -> Printf.sprintf "g[%d]" (int_bound 7 st)
    else
      let a = gen_expr (depth - 1) st and b = gen_expr (depth - 1) st in
      match int_bound 5 st with
      | 0 -> Printf.sprintf "(%s + %s)" a b
      | 1 -> Printf.sprintf "(%s - %s)" a b
      | 2 -> Printf.sprintf "(%s * %s)" a b
      (* divisor x %% 13 + 21 is always in 9..33, even under wraparound *)
      | 3 -> Printf.sprintf "(%s / (%s %% 13 + 21))" a b
      | 4 -> Printf.sprintf "(%s %% (%s %% 13 + 21))" a b
      | _ -> Printf.sprintf "(%s < %s)" a b
  in
  let gen_stmt st =
    let v = List.nth var_names (int_bound 3 st) in
    match int_bound 3 st with
    | 0 -> Printf.sprintf "%s = %s;" v (gen_expr 2 st)
    | 1 -> Printf.sprintf "g[%d] = %s;" (int_bound 7 st) (gen_expr 2 st)
    | 2 ->
        Printf.sprintf "if (%s) { %s = %s; } else { %s = %s; }" (gen_expr 1 st)
          v (gen_expr 1 st) v (gen_expr 1 st)
    | _ ->
        Printf.sprintf "for (i = 0; i < %d; i = i + 1) { %s = %s + i; }"
          (1 + int_bound 5 st) v v
  in
  let gen st =
    let body = String.concat "\n    " (List.init (2 + int_bound 6 st) (fun _ -> gen_stmt st)) in
    Printf.sprintf
      {|
      int g[8];
      int main() {
        int a; int b; int c; int d; int i;
        a = 1; b = 2; c = 3; d = 4;
        for (i = 0; i < 8; i = i + 1) { g[i] = i; }
        %s
        print_int(a); print_int(b); print_int(c); print_int(d);
        for (i = 0; i < 8; i = i + 1) { print_int(g[i]); }
        return 0;
      }
      |}
      body
  in
  gen

let prop_differential_o0_o1 =
  QCheck.Test.make ~name:"random programs: O0 and O1 agree" ~count:60
    (QCheck.make gen_program) (fun src ->
      let _, o0 = run_with Compile.O0 src in
      let _, o1 = run_with Compile.O1 src in
      o0 = o1)

let () =
  Alcotest.run "fold"
    [
      ( "folding",
        [
          Alcotest.test_case "int arithmetic" `Quick test_int_arith;
          Alcotest.test_case "unary" `Quick test_unary;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
          Alcotest.test_case "single rounding" `Quick test_float_single_rounding;
          Alcotest.test_case "div by zero kept" `Quick
            test_division_by_zero_left_alone;
          Alcotest.test_case "short circuit" `Quick test_short_circuit_literals;
          Alcotest.test_case "mixed promote" `Quick test_mixed_promote;
          Alcotest.test_case "casts" `Quick test_casts;
          Alcotest.test_case "indices" `Quick test_nested_in_lvalue_indices;
        ] );
      ( "optimisation levels",
        [
          Alcotest.test_case "O0 = O1 observably" `Quick
            test_opt_levels_equivalent;
          Alcotest.test_case "O1 not larger" `Quick test_o1_not_larger;
          Alcotest.test_case "O1 fewer dynamic" `Quick test_o1_fewer_dynamic;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_fold_preserves_int_eval; prop_differential_o0_o1 ] );
    ]
