module Block = Cfg.Block
module Dominator = Cfg.Dominator
module Loop = Cfg.Loop
module Profile = Cfg.Profile
module Asm = Isa.Asm
module Program = Isa.Program

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let straight_line = "nop\nnop\nnop\nli $v0, 10\nsyscall"

let diamond =
  {|
    li $t0, 1
    beq $t0, $zero, left
    nop
    j join
  left:
    nop
  join:
    li $v0, 10
    syscall
  |}

let simple_loop =
  {|
    li $t0, 5
  head:
    addiu $t0, $t0, -1
    bgtz $t0, head
    li $v0, 10
    syscall
  |}

let nested_loops =
  {|
    li $t0, 3
  outer:
    li $t1, 3
  inner:
    addiu $t1, $t1, -1
    bgtz $t1, inner
    addiu $t0, $t0, -1
    bgtz $t0, outer
    li $v0, 10
    syscall
  |}

let blocks_of src = Block.partition (Program.insns (Asm.assemble src))

let test_straight_line () =
  let blocks = blocks_of straight_line in
  check_int "one block" 1 (Array.length blocks);
  check_int "len" 5 blocks.(0).Block.len;
  check_bool "exit terminator" true (blocks.(0).Block.terminator = Block.Exit)

let test_diamond_structure () =
  let blocks = blocks_of diamond in
  check_int "four blocks" 4 (Array.length blocks);
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] blocks.(0).Block.succs;
  Alcotest.(check (list int)) "left preds" [ 0 ] blocks.(2).Block.preds;
  Alcotest.(check (list int)) "join preds" [ 1; 2 ] blocks.(3).Block.preds

let test_blocks_tile_program () =
  List.iter
    (fun src ->
      let p = Asm.assemble src in
      let blocks = blocks_of src in
      let covered = Array.make (Program.length p) 0 in
      Array.iter
        (fun b ->
          for i = b.Block.start to b.Block.start + b.Block.len - 1 do
            covered.(i) <- covered.(i) + 1
          done)
        blocks;
      Array.iteri
        (fun i c -> if c <> 1 then Alcotest.failf "insn %d covered %d times" i c)
        covered)
    [ straight_line; diamond; simple_loop; nested_loops ]

let test_block_at () =
  let blocks = blocks_of diamond in
  check_int "insn 0 in block 0" 0 (Block.block_at blocks 0).Block.index;
  check_int "last insn in last block" 3
    (Block.block_at blocks 6).Block.index

let test_no_branch_into_middle () =
  (* by construction every branch target is a block start *)
  List.iter
    (fun src ->
      let p = Asm.assemble src in
      let insns = Program.insns p in
      let blocks = blocks_of src in
      let starts = Array.to_list (Array.map (fun b -> b.Block.start) blocks) in
      Array.iteri
        (fun i insn ->
          let target =
            match Isa.Insn.branch_offset insn with
            | Some off -> Some (i + 1 + off)
            | None -> Isa.Insn.jump_target insn
          in
          match target with
          | Some t when not (List.mem t starts) ->
              Alcotest.failf "branch at %d targets mid-block %d" i t
          | Some _ | None -> ())
        insns)
    [ diamond; simple_loop; nested_loops ]

(* ---- dominators ------------------------------------------------------------ *)

let test_dominators_diamond () =
  let blocks = blocks_of diamond in
  let doms = Dominator.compute blocks in
  check_bool "entry dominates all" true
    (List.for_all
       (fun b -> Dominator.dominates doms ~dom:0 ~sub:b)
       [ 0; 1; 2; 3 ]);
  check_bool "left does not dominate join" false
    (Dominator.dominates doms ~dom:2 ~sub:3);
  Alcotest.(check (option int)) "idom of join" (Some 0)
    (Dominator.immediate doms 3);
  Alcotest.(check (option int)) "idom of entry" None (Dominator.immediate doms 0)

let test_dominators_self () =
  let blocks = blocks_of simple_loop in
  let doms = Dominator.compute blocks in
  Array.iter
    (fun b ->
      check_bool "self-domination" true
        (Dominator.dominates doms ~dom:b.Block.index ~sub:b.Block.index))
    blocks

let test_unreachable () =
  (* the block after an unconditional jump that nothing targets *)
  let src = {|
      j out
      nop
    out:
      li $v0, 10
      syscall
    |} in
  let blocks = blocks_of src in
  let doms = Dominator.compute blocks in
  check_bool "entry reachable" true (Dominator.reachable doms 0);
  let unreachable =
    Array.to_list blocks
    |> List.filter (fun b -> not (Dominator.reachable doms b.Block.index))
  in
  check_int "one unreachable block" 1 (List.length unreachable)

(* ---- loops ------------------------------------------------------------------ *)

let test_simple_loop_detected () =
  let blocks = blocks_of simple_loop in
  let doms = Dominator.compute blocks in
  let loops = Loop.detect blocks doms in
  check_int "one loop" 1 (List.length loops);
  let l = List.hd loops in
  check_int "header is block 1" 1 l.Loop.header;
  check_int "depth" 1 l.Loop.depth

let test_nested_loops_detected () =
  let blocks = blocks_of nested_loops in
  let doms = Dominator.compute blocks in
  let loops = Loop.detect blocks doms in
  check_int "two loops" 2 (List.length loops);
  let inner =
    List.find (fun (l : Loop.t) -> l.Loop.depth = 2) loops
  in
  let outer = List.find (fun (l : Loop.t) -> l.Loop.depth = 1) loops in
  check_bool "inner inside outer" true
    (List.for_all (fun b -> Loop.contains outer b) inner.Loop.body)

let test_innermost () =
  let blocks = blocks_of nested_loops in
  let doms = Dominator.compute blocks in
  let loops = Loop.detect blocks doms in
  let inner = List.find (fun (l : Loop.t) -> l.Loop.depth = 2) loops in
  match Loop.innermost loops inner.Loop.header with
  | Some l -> check_int "innermost depth" 2 l.Loop.depth
  | None -> Alcotest.fail "expected a loop"

let test_no_loops_in_straight_line () =
  let blocks = blocks_of straight_line in
  let doms = Dominator.compute blocks in
  check_int "no loops" 0 (List.length (Loop.detect blocks doms))

(* ---- profile ----------------------------------------------------------------- *)

let test_profile_counts () =
  let p = Asm.assemble simple_loop in
  let profile, result = Profile.collect p in
  check_int "total = dynamic instructions" result.Machine.Cpu.instructions
    (Profile.total profile);
  (* loop body (block 1, two instructions) executes 5 times *)
  let blocks = Block.partition (Program.insns p) in
  check_int "loop weight" 5 (Profile.block_weight profile blocks.(1));
  check_int "loop fetches" 10 (Profile.block_fetches profile blocks.(1))

let test_hot_blocks_order () =
  let p = Asm.assemble nested_loops in
  let profile, _ = Profile.collect p in
  let blocks = Block.partition (Program.insns p) in
  match Profile.hot_blocks profile blocks with
  | hottest :: _ ->
      (* the inner loop body must be the hottest block *)
      let inner_weight = Profile.block_fetches profile hottest in
      Array.iter
        (fun b ->
          check_bool "hottest first" true
            (Profile.block_fetches profile b <= inner_weight))
        blocks
  | [] -> Alcotest.fail "no hot blocks"

let test_coverage () =
  let p = Asm.assemble simple_loop in
  let profile, _ = Profile.collect p in
  let blocks = Block.partition (Program.insns p) in
  let all = Array.to_list blocks in
  Alcotest.(check (float 1e-9)) "full coverage" 1.0 (Profile.coverage profile all);
  Alcotest.(check (float 1e-9)) "empty coverage" 0.0 (Profile.coverage profile [])

let () =
  Alcotest.run "cfg"
    [
      ( "blocks",
        [
          Alcotest.test_case "straight line" `Quick test_straight_line;
          Alcotest.test_case "diamond" `Quick test_diamond_structure;
          Alcotest.test_case "tiling" `Quick test_blocks_tile_program;
          Alcotest.test_case "block_at" `Quick test_block_at;
          Alcotest.test_case "targets are leaders" `Quick
            test_no_branch_into_middle;
        ] );
      ( "dominators",
        [
          Alcotest.test_case "diamond" `Quick test_dominators_diamond;
          Alcotest.test_case "self" `Quick test_dominators_self;
          Alcotest.test_case "unreachable" `Quick test_unreachable;
        ] );
      ( "loops",
        [
          Alcotest.test_case "simple" `Quick test_simple_loop_detected;
          Alcotest.test_case "nested" `Quick test_nested_loops_detected;
          Alcotest.test_case "innermost" `Quick test_innermost;
          Alcotest.test_case "none" `Quick test_no_loops_in_straight_line;
        ] );
      ( "profile",
        [
          Alcotest.test_case "counts" `Quick test_profile_counts;
          Alcotest.test_case "hot order" `Quick test_hot_blocks_order;
          Alcotest.test_case "coverage" `Quick test_coverage;
        ] );
    ]
