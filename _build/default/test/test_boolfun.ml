module Boolfun = Powercode.Boolfun

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let test_count () = check_int "sixteen functions" 16 (List.length Boolfun.all)

let test_index_roundtrip () =
  List.iter
    (fun f -> check_int "roundtrip" (Boolfun.index f)
        (Boolfun.index (Boolfun.of_index (Boolfun.index f))))
    Boolfun.all

let test_of_index_range () =
  Alcotest.check_raises "16 rejected"
    (Invalid_argument "Boolfun.of_index: not in 0..15") (fun () ->
      ignore (Boolfun.of_index 16))

let truth_table f =
  [
    Boolfun.apply f false false;
    Boolfun.apply f false true;
    Boolfun.apply f true false;
    Boolfun.apply f true true;
  ]

let test_named_tables () =
  Alcotest.(check (list bool)) "identity = x" [ false; false; true; true ]
    (truth_table Boolfun.identity);
  Alcotest.(check (list bool)) "inversion = !x" [ true; true; false; false ]
    (truth_table Boolfun.inversion);
  Alcotest.(check (list bool)) "history = y" [ false; true; false; true ]
    (truth_table Boolfun.history);
  Alcotest.(check (list bool)) "not_history = !y" [ true; false; true; false ]
    (truth_table Boolfun.not_history);
  Alcotest.(check (list bool)) "xor" [ false; true; true; false ]
    (truth_table Boolfun.xor);
  Alcotest.(check (list bool)) "xnor" [ true; false; false; true ]
    (truth_table Boolfun.xnor);
  Alcotest.(check (list bool)) "nor" [ true; false; false; false ]
    (truth_table Boolfun.nor);
  Alcotest.(check (list bool)) "nand" [ true; true; true; false ]
    (truth_table Boolfun.nand);
  Alcotest.(check (list bool)) "and" [ false; false; false; true ]
    (truth_table Boolfun.and_);
  Alcotest.(check (list bool)) "or" [ false; true; true; true ]
    (truth_table Boolfun.or_)

let test_all_distinct () =
  let idx = List.map Boolfun.index Boolfun.all in
  check_int "distinct" 16 (List.length (List.sort_uniq Int.compare idx))

(* The paper's symmetry: inverting all bits swaps XOR with XNOR and NOR with
   NAND while fixing identity and inversion. *)
let test_dual_pairs () =
  let eq = Boolfun.equal in
  check_bool "dual xor = xnor" true (eq (Boolfun.dual Boolfun.xor) Boolfun.xnor);
  check_bool "dual xnor = xor" true (eq (Boolfun.dual Boolfun.xnor) Boolfun.xor);
  check_bool "dual nor = nand" true (eq (Boolfun.dual Boolfun.nor) Boolfun.nand);
  check_bool "dual nand = nor" true (eq (Boolfun.dual Boolfun.nand) Boolfun.nor);
  check_bool "dual identity = identity" true
    (eq (Boolfun.dual Boolfun.identity) Boolfun.identity);
  check_bool "dual inversion = inversion" true
    (eq (Boolfun.dual Boolfun.inversion) Boolfun.inversion);
  check_bool "dual !y = !y" true
    (eq (Boolfun.dual Boolfun.not_history) Boolfun.not_history)

let prop_dual_involution =
  QCheck.Test.make ~name:"dual is an involution" ~count:64
    QCheck.(int_bound 15)
    (fun i ->
      let f = Boolfun.of_index i in
      Boolfun.equal (Boolfun.dual (Boolfun.dual f)) f)

let prop_dual_semantics =
  QCheck.Test.make ~name:"dual f (x,y) = not (f (!x,!y))" ~count:200
    QCheck.(triple (int_bound 15) bool bool)
    (fun (i, x, y) ->
      let f = Boolfun.of_index i in
      Boolfun.apply (Boolfun.dual f) x y = not (Boolfun.apply f (not x) (not y)))

let test_masks () =
  let m = Boolfun.mask_of_list [ Boolfun.identity; Boolfun.xor ] in
  check_bool "mem identity" true (Boolfun.mask_mem Boolfun.identity m);
  check_bool "mem xor" true (Boolfun.mask_mem Boolfun.xor m);
  check_bool "not mem nor" false (Boolfun.mask_mem Boolfun.nor m);
  check_int "two members" 2 (List.length (Boolfun.list_of_mask m));
  check_int "full has 16" 16 (List.length (Boolfun.list_of_mask Boolfun.full_mask))

let test_names_unique () =
  let names = List.map Boolfun.name Boolfun.all in
  check_int "unique names" 16 (List.length (List.sort_uniq String.compare names))

let () =
  Alcotest.run "boolfun"
    [
      ( "tables",
        [
          Alcotest.test_case "count" `Quick test_count;
          Alcotest.test_case "index roundtrip" `Quick test_index_roundtrip;
          Alcotest.test_case "of_index range" `Quick test_of_index_range;
          Alcotest.test_case "named truth tables" `Quick test_named_tables;
          Alcotest.test_case "all distinct" `Quick test_all_distinct;
          Alcotest.test_case "names unique" `Quick test_names_unique;
        ] );
      ( "dual",
        Alcotest.test_case "pairs" `Quick test_dual_pairs
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_dual_involution; prop_dual_semantics ] );
      ("masks", [ Alcotest.test_case "masks" `Quick test_masks ]);
    ]
