module PE = Powercode.Program_encoder
module Subset = Powercode.Subset
module Bitmat = Bitutil.Bitmat

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let config ?(k = 5) ?(tt = 16) ?(optimal = false) () =
  {
    PE.k;
    subset_mask = Subset.paper_eight_mask;
    tt_capacity = tt;
    optimal_chain = optimal;
  }

let seeded_words seed n width =
  let state = ref seed in
  Array.init n (fun _ ->
      state := !state lxor (!state lsl 13);
      state := !state lxor (!state lsr 7);
      state := !state lxor (!state lsl 17);
      !state land ((1 lsl width) - 1))

let matrix seed n = Bitmat.of_words ~width:32 (seeded_words seed n 32)

let test_entries_needed () =
  check_int "rows=5 k=5" 1 (PE.entries_needed ~k:5 ~rows:5);
  check_int "rows=6 k=5" 2 (PE.entries_needed ~k:5 ~rows:6);
  check_int "rows=9 k=5" 2 (PE.entries_needed ~k:5 ~rows:9);
  check_int "rows=10 k=5" 3 (PE.entries_needed ~k:5 ~rows:10)

let test_encode_decode_roundtrip () =
  List.iter
    (fun (seed, rows, k) ->
      let m = matrix seed rows in
      let enc = PE.encode_block (config ~k ()) m in
      let dec = PE.decode_block ~k ~entries:enc.PE.entries enc.PE.encoded in
      Alcotest.(check (array int))
        (Printf.sprintf "seed=%d rows=%d k=%d" seed rows k)
        (Bitmat.words m) (Bitmat.words dec))
    [ (1, 2, 4); (2, 5, 5); (3, 17, 5); (4, 30, 7); (5, 8, 2); (6, 64, 6) ]

let test_first_instruction_verbatim () =
  let m = matrix 99 12 in
  let enc = PE.encode_block (config ()) m in
  check_int "head verbatim" (Bitmat.word m 0) (Bitmat.word enc.PE.encoded 0)

let test_never_more_transitions () =
  List.iter
    (fun seed ->
      let m = matrix seed 25 in
      let enc = PE.encode_block (config ()) m in
      check_bool "no worse" true
        (Bitmat.transitions enc.PE.encoded <= Bitmat.transitions m))
    [ 11; 22; 33; 44 ]

let test_entry_structure () =
  let rows = 13 and k = 5 in
  let enc = PE.encode_block (config ~k ()) (matrix 7 rows) in
  let n = Array.length enc.PE.entries in
  check_int "entry count" (PE.entries_needed ~k ~rows) n;
  Array.iteri
    (fun j (e : PE.tt_entry) ->
      check_int "one tau per line" 32 (Array.length e.PE.taus);
      check_bool "is_end only on last" true (e.PE.is_end = (j = n - 1)))
    enc.PE.entries;
  (* counts must sum to the block length: entry 0 includes the head *)
  let total = Array.fold_left (fun acc e -> acc + e.PE.count) 0 enc.PE.entries in
  check_int "counts cover all rows" rows total

let test_optimal_no_worse_than_greedy () =
  List.iter
    (fun seed ->
      let m = matrix seed 40 in
      let g = PE.encode_block (config ()) m in
      let o = PE.encode_block (config ~optimal:true ()) m in
      check_bool "optimal <= greedy" true
        (Bitmat.transitions o.PE.encoded <= Bitmat.transitions g.PE.encoded);
      let dec = PE.decode_block ~k:5 ~entries:o.PE.entries o.PE.encoded in
      Alcotest.(check (array int)) "optimal decodes" (Bitmat.words m)
        (Bitmat.words dec))
    [ 3; 14; 159 ]

(* ---- planning ------------------------------------------------------------ *)

let cand seed ~start ~rows ~weight =
  { PE.start_index = start; body = matrix seed rows; weight }

let test_plan_prefers_hot () =
  let cands =
    [
      cand 1 ~start:0 ~rows:10 ~weight:10;
      cand 2 ~start:20 ~rows:10 ~weight:1000;
    ]
  in
  let plan = PE.plan (config ~tt:3 ()) cands in
  let by_start s =
    List.find (fun p -> p.PE.cand.PE.start_index = s) plan.PE.placements
  in
  check_bool "hot encoded" true ((by_start 20).PE.encoding <> None);
  check_int "tt used" 3 plan.PE.tt_used

let test_plan_skips_tiny_and_cold () =
  let cands =
    [
      cand 1 ~start:0 ~rows:1 ~weight:50;
      cand 2 ~start:10 ~rows:8 ~weight:0;
    ]
  in
  let plan = PE.plan (config ()) cands in
  List.iter
    (fun p -> check_bool "not encoded" true (p.PE.encoding = None))
    plan.PE.placements;
  check_int "no tt" 0 plan.PE.tt_used

let test_plan_partial_coverage () =
  (* 100 rows at k=5 needs 1+ceil(95/4)=25 entries; 16 available cover
     5 + 15*4 = 65 rows *)
  let plan = PE.plan (config ()) [ cand 5 ~start:0 ~rows:100 ~weight:9 ] in
  match plan.PE.placements with
  | [ p ] -> (
      match p.PE.encoding with
      | None -> Alcotest.fail "expected partial encoding"
      | Some enc ->
          check_int "covered rows" 65 (Bitmat.rows enc.PE.encoded);
          check_int "tt used" 16 plan.PE.tt_used;
          check_bool "last entry ends" true
            (Array.length enc.PE.entries = 16 && enc.PE.entries.(15).PE.is_end))
  | _ -> Alcotest.fail "one placement expected"

let test_plan_sorted_by_start () =
  let cands =
    [
      cand 1 ~start:50 ~rows:5 ~weight:5;
      cand 2 ~start:0 ~rows:5 ~weight:50;
      cand 3 ~start:25 ~rows:5 ~weight:500;
    ]
  in
  let plan = PE.plan (config ()) cands in
  let starts = List.map (fun p -> p.PE.cand.PE.start_index) plan.PE.placements in
  Alcotest.(check (list int)) "sorted" [ 0; 25; 50 ] starts

let test_plan_capacity_invariant () =
  for seed = 1 to 10 do
    let cands =
      List.init 8 (fun i ->
          cand
            ((seed * 10) + i)
            ~start:(i * 40)
            ~rows:(5 + (i * 3))
            ~weight:(100 - i))
    in
    let plan = PE.plan (config ~tt:16 ()) cands in
    check_bool "capacity respected" true (plan.PE.tt_used <= 16)
  done

let prop_roundtrip =
  QCheck.Test.make ~name:"encode_block/decode_block roundtrip" ~count:60
    QCheck.(pair (int_range 2 7) (int_range 2 40))
    (fun (k, rows) ->
      let m = matrix ((k * 1000) + rows) rows in
      let enc = PE.encode_block (config ~k ()) m in
      let dec = PE.decode_block ~k ~entries:enc.PE.entries enc.PE.encoded in
      Bitmat.words dec = Bitmat.words m)

let () =
  Alcotest.run "program_encoder"
    [
      ( "encoding",
        [
          Alcotest.test_case "entries_needed" `Quick test_entries_needed;
          Alcotest.test_case "roundtrip" `Quick test_encode_decode_roundtrip;
          Alcotest.test_case "head verbatim" `Quick
            test_first_instruction_verbatim;
          Alcotest.test_case "never worse" `Quick test_never_more_transitions;
          Alcotest.test_case "entry structure" `Quick test_entry_structure;
          Alcotest.test_case "optimal chain" `Quick
            test_optimal_no_worse_than_greedy;
        ] );
      ( "planning",
        [
          Alcotest.test_case "prefers hot" `Quick test_plan_prefers_hot;
          Alcotest.test_case "skips tiny and cold" `Quick
            test_plan_skips_tiny_and_cold;
          Alcotest.test_case "partial coverage" `Quick test_plan_partial_coverage;
          Alcotest.test_case "sorted output" `Quick test_plan_sorted_by_start;
          Alcotest.test_case "capacity invariant" `Quick
            test_plan_capacity_invariant;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_roundtrip ]);
    ]
