module Reg = Isa.Reg
module Insn = Isa.Insn
module Word = Isa.Word
module Asm = Isa.Asm
module Program = Isa.Program

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- registers ----------------------------------------------------------- *)

let test_reg_names () =
  check_string "t0" "$t0" (Reg.name Reg.t0);
  check_string "sp" "$sp" (Reg.name Reg.sp);
  check_int "of_name $t0" (Reg.to_int Reg.t0) (Reg.to_int (Reg.of_name "$t0"));
  check_int "of_name numeric" 8 (Reg.to_int (Reg.of_name "$8"));
  check_int "of_name bare" 31 (Reg.to_int (Reg.of_name "ra"))

let test_reg_bounds () =
  Alcotest.check_raises "32 rejected"
    (Invalid_argument "Reg.of_int: not in 0..31") (fun () ->
      ignore (Reg.of_int 32))

let test_freg_names () =
  check_string "f5" "$f5" (Reg.f_name (Reg.f_of_int 5));
  check_int "of_name" 12 (Reg.f_to_int (Reg.f_of_name "$f12"))

(* ---- encoding ------------------------------------------------------------ *)

let representative_insns =
  [
    Insn.Add (Reg.t0, Reg.t1, Reg.t2);
    Insn.Addu (Reg.v0, Reg.a0, Reg.a1);
    Insn.Sub (Reg.s0, Reg.s1, Reg.s2);
    Insn.Subu (Reg.t3, Reg.t4, Reg.t5);
    Insn.And (Reg.t0, Reg.t1, Reg.t2);
    Insn.Or (Reg.t0, Reg.t1, Reg.t2);
    Insn.Xor (Reg.t0, Reg.t1, Reg.t2);
    Insn.Nor (Reg.t0, Reg.t1, Reg.t2);
    Insn.Slt (Reg.t0, Reg.t1, Reg.t2);
    Insn.Sltu (Reg.t0, Reg.t1, Reg.t2);
    Insn.Sll (Reg.t0, Reg.t1, 5);
    Insn.Srl (Reg.t0, Reg.t1, 31);
    Insn.Sra (Reg.t0, Reg.t1, 1);
    Insn.Sllv (Reg.t0, Reg.t1, Reg.t2);
    Insn.Srlv (Reg.t0, Reg.t1, Reg.t2);
    Insn.Srav (Reg.t0, Reg.t1, Reg.t2);
    Insn.Mult (Reg.t1, Reg.t2);
    Insn.Div (Reg.t1, Reg.t2);
    Insn.Mfhi Reg.t0;
    Insn.Mflo Reg.t0;
    Insn.Addi (Reg.t0, Reg.t1, -42);
    Insn.Addiu (Reg.t0, Reg.t1, 42);
    Insn.Slti (Reg.t0, Reg.t1, -1);
    Insn.Andi (Reg.t0, Reg.t1, 0xffff);
    Insn.Ori (Reg.t0, Reg.t1, 0xabcd);
    Insn.Xori (Reg.t0, Reg.t1, 0x1234);
    Insn.Lui (Reg.t0, 0x8000);
    Insn.Lw (Reg.t0, -4, Reg.sp);
    Insn.Sw (Reg.t0, 4, Reg.sp);
    Insn.Lb (Reg.t0, 0, Reg.a0);
    Insn.Sb (Reg.t0, 1, Reg.a0);
    Insn.Beq (Reg.t0, Reg.t1, -3);
    Insn.Bne (Reg.t0, Reg.t1, 7);
    Insn.Blez (Reg.t0, 2);
    Insn.Bgtz (Reg.t0, -2);
    Insn.Bltz (Reg.t0, 1);
    Insn.Bgez (Reg.t0, -1);
    Insn.J 1024;
    Insn.Jal 2048;
    Insn.Jr Reg.ra;
    Insn.Jalr (Reg.ra, Reg.t9);
    Insn.Lwc1 (Reg.f_of_int 2, 8, Reg.sp);
    Insn.Swc1 (Reg.f_of_int 2, -8, Reg.sp);
    Insn.Mtc1 (Reg.t0, Reg.f_of_int 3);
    Insn.Mfc1 (Reg.t0, Reg.f_of_int 3);
    Insn.Add_s (Reg.f_of_int 1, Reg.f_of_int 2, Reg.f_of_int 3);
    Insn.Sub_s (Reg.f_of_int 4, Reg.f_of_int 5, Reg.f_of_int 6);
    Insn.Mul_s (Reg.f_of_int 7, Reg.f_of_int 8, Reg.f_of_int 9);
    Insn.Div_s (Reg.f_of_int 10, Reg.f_of_int 11, Reg.f_of_int 12);
    Insn.Abs_s (Reg.f_of_int 1, Reg.f_of_int 2);
    Insn.Neg_s (Reg.f_of_int 1, Reg.f_of_int 2);
    Insn.Mov_s (Reg.f_of_int 1, Reg.f_of_int 2);
    Insn.Sqrt_s (Reg.f_of_int 1, Reg.f_of_int 2);
    Insn.Cvt_s_w (Reg.f_of_int 1, Reg.f_of_int 2);
    Insn.Cvt_w_s (Reg.f_of_int 1, Reg.f_of_int 2);
    Insn.C_eq_s (Reg.f_of_int 1, Reg.f_of_int 2);
    Insn.C_lt_s (Reg.f_of_int 1, Reg.f_of_int 2);
    Insn.C_le_s (Reg.f_of_int 1, Reg.f_of_int 2);
    Insn.Bc1t 3;
    Insn.Bc1f (-3);
    Insn.Syscall;
    Insn.Nop;
  ]

let test_roundtrip_all () =
  List.iter
    (fun insn ->
      let w = Word.encode insn in
      check_bool "32-bit" true (w >= 0 && w <= 0xffffffff);
      let back = Word.decode w in
      if not (Insn.equal insn back) then
        Alcotest.failf "roundtrip failed: %s -> %08x -> %s"
          (Insn.to_string insn) w (Insn.to_string back))
    representative_insns

let test_known_encodings () =
  (* cross-checked against the MIPS-I manual *)
  check_int "add $t0,$t1,$t2" 0x012a4020
    (Word.encode (Insn.Add (Reg.t0, Reg.t1, Reg.t2)));
  check_int "addiu $t0,$zero,1" 0x24080001
    (Word.encode (Insn.Addiu (Reg.t0, Reg.zero, 1)));
  check_int "lw $t0,4($sp)" 0x8fa80004
    (Word.encode (Insn.Lw (Reg.t0, 4, Reg.sp)));
  check_int "jr $ra" 0x03e00008 (Word.encode (Insn.Jr Reg.ra));
  check_int "syscall" 0x0000000c (Word.encode Insn.Syscall);
  check_int "nop" 0 (Word.encode Insn.Nop)

let test_encode_range_checks () =
  Alcotest.check_raises "imm too large"
    (Invalid_argument "Word.encode: signed immediate out of range: 32768")
    (fun () -> ignore (Word.encode (Insn.Addi (Reg.t0, Reg.t0, 0x8000))));
  Alcotest.check_raises "shamt"
    (Invalid_argument "Word.encode: shift amount out of range") (fun () ->
      ignore (Word.encode (Insn.Sll (Reg.t0, Reg.t0, 32))))

let test_decode_unknown () =
  Alcotest.check_raises "bad opcode" (Word.Unknown_instruction 0xfc000000)
    (fun () -> ignore (Word.decode 0xfc000000))

(* ---- assembler ----------------------------------------------------------- *)

let test_assemble_simple () =
  let p =
    Asm.assemble
      {|
        # count down from 3
        li $t0, 3
      loop:
        addiu $t0, $t0, -1
        bne $t0, $zero, loop
        syscall
      |}
  in
  check_int "4 instructions" 4 (Program.length p);
  check_int "loop label" 1 (Program.address_of p "loop");
  (* branch offset: from instruction 3 back to 1 => -2 *)
  match (Program.insns p).(2) with
  | Insn.Bne (_, _, off) -> check_int "offset" (-2) off
  | other -> Alcotest.failf "expected bne, got %s" (Insn.to_string other)

let test_assemble_pseudo_li_wide () =
  let p = Asm.assemble "li $t0, 65536" in
  (* needs lui (+ no ori since low bits are zero) *)
  check_int "one insn" 1 (Program.length p);
  let p2 = Asm.assemble "li $t0, 65537" in
  check_int "lui+ori" 2 (Program.length p2)

let test_assemble_memory_operand () =
  let p = Asm.assemble "lw $t1, -8($sp)" in
  match (Program.insns p).(0) with
  | Insn.Lw (t, off, base) ->
      check_string "target" "$t1" (Reg.name t);
      check_int "offset" (-8) off;
      check_string "base" "$sp" (Reg.name base)
  | other -> Alcotest.failf "expected lw, got %s" (Insn.to_string other)

let test_assemble_branch_pseudos () =
  let p =
    Asm.assemble {|
      blt $t0, $t1, out
      nop
    out:
      nop
    |}
  in
  (* blt expands to slt + bne *)
  check_int "expanded" 4 (Program.length p)

let test_assemble_fp () =
  let p = Asm.assemble "add.s $f1, $f2, $f3\nlwc1 $f4, 0($sp)" in
  match Program.insns p with
  | [| Insn.Add_s (d, s, t); Insn.Lwc1 (ft, 0, base) |] ->
      check_int "fd" 1 (Reg.f_to_int d);
      check_int "fs" 2 (Reg.f_to_int s);
      check_int "ft" 3 (Reg.f_to_int t);
      check_int "lwc1 ft" 4 (Reg.f_to_int ft);
      check_string "base" "$sp" (Reg.name base)
  | _ -> Alcotest.fail "unexpected shape"

let test_undefined_label () =
  Alcotest.check_raises "undefined" (Isa.Sym.Undefined_label "nowhere")
    (fun () -> ignore (Asm.assemble "j nowhere"))

let test_duplicate_label () =
  Alcotest.check_raises "duplicate" (Isa.Sym.Duplicate_label "a") (fun () ->
      ignore (Asm.assemble "a:\nnop\na:\nnop"))

let test_parse_error_line () =
  try
    ignore (Asm.assemble "nop\nbogus $t0");
    Alcotest.fail "expected parse error"
  with Asm.Parse_error { line; _ } -> check_int "line" 2 line

let test_program_words_match () =
  let p = Asm.assemble "addiu $t0, $zero, 7\nsyscall" in
  Alcotest.(check (array int))
    "words"
    (Array.map Word.encode (Program.insns p))
    (Program.words p)

(* ---- disassembler ----------------------------------------------------------- *)

let reassembles_identically p =
  let source = Isa.Disasm.to_source p in
  let p2 = Asm.assemble source in
  Program.words p2 = Program.words p

let test_disasm_roundtrip_simple () =
  let p =
    Asm.assemble
      {|
        li $t0, 5
      loop:
        addiu $t0, $t0, -1
        bgtz $t0, loop
        beq $t0, $zero, out
        nop
      out:
        li $v0, 10
        syscall
      |}
  in
  check_bool "roundtrip" true (reassembles_identically p)

let test_disasm_keeps_known_labels () =
  let p = Asm.assemble "start:\nnop\nj start" in
  let src = Isa.Disasm.to_source p in
  check_bool "has start label" true
    (String.length src >= 6 && String.sub src 0 6 = "start:")

let test_disasm_synthesizes_labels () =
  let p = Program.of_insns [| Insn.J 2; Insn.Nop; Insn.Syscall |] in
  check_bool "roundtrip with synthetic labels" true (reassembles_identically p)

let test_disasm_compiler_output () =
  (* the largest real corpus we have: disassemble each compiled kernel and
     reassemble it bit-for-bit *)
  List.iter
    (fun w ->
      let c = Minic.Compile.compile w.Workloads.source in
      if not (reassembles_identically c.Minic.Compile.program) then
        Alcotest.failf "%s did not roundtrip" w.Workloads.name)
    Workloads.scaled

let test_disasm_line () =
  let p = Asm.assemble "beq $t0, $t1, next\nnext:\nnop" in
  check_string "line" "beq $t0, $t1, next" (Isa.Disasm.line p 0)

(* ---- properties ----------------------------------------------------------- *)

let insn_gen =
  let open QCheck.Gen in
  let reg = map Reg.of_int (int_bound 31) in
  let freg = map Reg.f_of_int (int_bound 31) in
  let s16 = int_range (-32768) 32767 in
  let u16 = int_bound 0xffff in
  oneof
    [
      map3 (fun a b c -> Insn.Add (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.Xor (a, b, c)) reg reg reg;
      map3 (fun a b c -> Insn.Sll (a, b, c)) reg reg (int_bound 31);
      map3 (fun a b c -> Insn.Addiu (a, b, c)) reg reg s16;
      map3 (fun a b c -> Insn.Ori (a, b, c)) reg reg u16;
      map3 (fun a b c -> Insn.Lw (a, b, c)) reg s16 reg;
      map3 (fun a b c -> Insn.Sw (a, b, c)) reg s16 reg;
      map3 (fun a b c -> Insn.Beq (a, b, c)) reg reg s16;
      map (fun t -> Insn.J t) (int_bound ((1 lsl 26) - 1));
      map3 (fun a b c -> Insn.Add_s (a, b, c)) freg freg freg;
      map3 (fun a b c -> Insn.Lwc1 (a, b, c)) freg s16 reg;
      map2 (fun a b -> Insn.Mtc1 (a, b)) reg freg;
    ]

let prop_encode_decode =
  QCheck.Test.make ~name:"random instruction roundtrip" ~count:1000
    (QCheck.make insn_gen) (fun insn ->
      Insn.equal (Word.decode (Word.encode insn)) insn)

let () =
  Alcotest.run "isa"
    [
      ( "registers",
        [
          Alcotest.test_case "names" `Quick test_reg_names;
          Alcotest.test_case "bounds" `Quick test_reg_bounds;
          Alcotest.test_case "fp names" `Quick test_freg_names;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "roundtrip all" `Quick test_roundtrip_all;
          Alcotest.test_case "known encodings" `Quick test_known_encodings;
          Alcotest.test_case "range checks" `Quick test_encode_range_checks;
          Alcotest.test_case "unknown decode" `Quick test_decode_unknown;
        ] );
      ( "assembler",
        [
          Alcotest.test_case "simple program" `Quick test_assemble_simple;
          Alcotest.test_case "wide li" `Quick test_assemble_pseudo_li_wide;
          Alcotest.test_case "memory operand" `Quick test_assemble_memory_operand;
          Alcotest.test_case "branch pseudos" `Quick test_assemble_branch_pseudos;
          Alcotest.test_case "fp syntax" `Quick test_assemble_fp;
          Alcotest.test_case "undefined label" `Quick test_undefined_label;
          Alcotest.test_case "duplicate label" `Quick test_duplicate_label;
          Alcotest.test_case "error line" `Quick test_parse_error_line;
          Alcotest.test_case "words match" `Quick test_program_words_match;
        ] );
      ( "disassembler",
        [
          Alcotest.test_case "roundtrip simple" `Quick
            test_disasm_roundtrip_simple;
          Alcotest.test_case "keeps known labels" `Quick
            test_disasm_keeps_known_labels;
          Alcotest.test_case "synthesizes labels" `Quick
            test_disasm_synthesizes_labels;
          Alcotest.test_case "compiler corpus" `Quick test_disasm_compiler_output;
          Alcotest.test_case "single line" `Quick test_disasm_line;
        ] );
      ("properties", List.map QCheck_alcotest.to_alcotest [ prop_encode_decode ]);
    ]
