module Bitvec = Bitutil.Bitvec
module Bitmat = Bitutil.Bitmat

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

(* ---- Bitvec ------------------------------------------------------------- *)

let test_create_empty () =
  let v = Bitvec.create 0 in
  check_int "length" 0 (Bitvec.length v);
  check_int "transitions" 0 (Bitvec.transitions v)

let test_create_zeroed () =
  let v = Bitvec.create 10 in
  for i = 0 to 9 do
    check_bool "bit is zero" false (Bitvec.get v i)
  done

let test_set_get () =
  let v = Bitvec.create 8 in
  let v = Bitvec.set v 3 true in
  check_bool "set bit" true (Bitvec.get v 3);
  check_bool "neighbour untouched" false (Bitvec.get v 2);
  let v2 = Bitvec.set v 3 false in
  check_bool "cleared" false (Bitvec.get v2 3);
  check_bool "original immutable" true (Bitvec.get v 3)

let test_out_of_range () =
  let v = Bitvec.create 4 in
  Alcotest.check_raises "get -1" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v (-1)));
  Alcotest.check_raises "get 4" (Invalid_argument "Bitvec: index out of range")
    (fun () -> ignore (Bitvec.get v 4))

let test_string_roundtrip () =
  let s = "1011001" in
  check_string "roundtrip" s (Bitvec.to_string (Bitvec.of_string s))

let test_string_orientation () =
  (* rightmost char is bit 0 *)
  let v = Bitvec.of_string "100" in
  check_bool "bit 0" false (Bitvec.get v 0);
  check_bool "bit 2" true (Bitvec.get v 2)

let test_of_int () =
  let v = Bitvec.of_int ~width:5 0b01010 in
  check_string "render" "01010" (Bitvec.to_string v);
  check_int "back" 0b01010 (Bitvec.to_int v)

let test_of_int_too_wide () =
  Alcotest.check_raises "value does not fit"
    (Invalid_argument "Bitvec.of_int: value does not fit") (fun () ->
      ignore (Bitvec.of_int ~width:3 8))

let test_transitions_examples () =
  check_int "0101" 3 (Bitvec.transitions (Bitvec.of_string "0101"));
  check_int "0000" 0 (Bitvec.transitions (Bitvec.of_string "0000"));
  check_int "1000" 1 (Bitvec.transitions (Bitvec.of_string "1000"));
  check_int "single" 0 (Bitvec.transitions (Bitvec.of_string "1"))

let test_popcount_hamming () =
  let a = Bitvec.of_string "1101" and b = Bitvec.of_string "1011" in
  check_int "popcount" 3 (Bitvec.popcount a);
  check_int "hamming" 2 (Bitvec.hamming a b)

let test_append_sub () =
  let a = Bitvec.of_string "11" and b = Bitvec.of_string "00" in
  (* append: bits of a first (low indices), then b *)
  let c = Bitvec.append a b in
  check_string "append" "0011" (Bitvec.to_string c);
  check_string "sub" "1" (Bitvec.to_string (Bitvec.sub c ~pos:1 ~len:1))

let test_map2_lnot () =
  let a = Bitvec.of_string "1100" and b = Bitvec.of_string "1010" in
  check_string "xor" "0110" (Bitvec.to_string (Bitvec.map2 ( <> ) a b));
  check_string "lnot" "0011" (Bitvec.to_string (Bitvec.lnot_ a))

(* ---- Bitmat ------------------------------------------------------------- *)

let test_bitmat_columns () =
  let m = Bitmat.of_words ~width:4 [| 0b0001; 0b0011; 0b0010 |] in
  check_string "column 0" "011" (Bitvec.to_string (Bitmat.column m 0));
  check_string "column 1" "110" (Bitvec.to_string (Bitmat.column m 1));
  check_string "column 3" "000" (Bitvec.to_string (Bitmat.column m 3))

let test_bitmat_roundtrip () =
  let words = [| 0xdead; 0xbeef; 0x1234; 0x0 |] in
  let m = Bitmat.of_words ~width:16 words in
  let cols = Array.init 16 (Bitmat.column m) in
  let m2 = Bitmat.of_columns cols in
  Alcotest.(check (array int)) "roundtrip" words (Bitmat.words m2)

let test_bitmat_transitions () =
  let m = Bitmat.of_words ~width:4 [| 0b0000; 0b1111; 0b0000 |] in
  check_int "total" 8 (Bitmat.transitions m);
  Alcotest.(check (array int)) "per line" [| 2; 2; 2; 2 |]
    (Bitmat.column_transitions m)

let test_bitmat_width_check () =
  Alcotest.check_raises "word too wide"
    (Invalid_argument "Bitmat.of_words: word does not fit width") (fun () ->
      ignore (Bitmat.of_words ~width:4 [| 16 |]))

(* ---- properties ---------------------------------------------------------- *)

let bits_gen n = QCheck.(list_of_size (Gen.return n) bool)

let prop_string_roundtrip =
  QCheck.Test.make ~name:"bitvec string roundtrip" ~count:200
    (bits_gen 17) (fun bits ->
      let v = Bitvec.of_list bits in
      Bitvec.equal v (Bitvec.of_string (Bitvec.to_string v)))

let prop_transitions_bound =
  QCheck.Test.make ~name:"transitions < length" ~count:200
    QCheck.(list_of_size Gen.(1 -- 64) bool)
    (fun bits ->
      let v = Bitvec.of_list bits in
      Bitvec.transitions v <= Bitvec.length v - 1)

let prop_hamming_triangle =
  QCheck.Test.make ~name:"hamming triangle inequality" ~count:200
    QCheck.(triple (bits_gen 12) (bits_gen 12) (bits_gen 12))
    (fun (a, b, c) ->
      let va = Bitvec.of_list a
      and vb = Bitvec.of_list b
      and vc = Bitvec.of_list c in
      Bitvec.hamming va vc <= Bitvec.hamming va vb + Bitvec.hamming vb vc)

let prop_matrix_transitions_consistent =
  QCheck.Test.make ~name:"matrix transitions = sum of column transitions"
    ~count:100
    QCheck.(list_of_size Gen.(2 -- 20) (int_bound 0xffff))
    (fun words ->
      let m = Bitmat.of_words ~width:16 (Array.of_list words) in
      Bitmat.transitions m
      = Array.fold_left ( + ) 0 (Bitmat.column_transitions m)
      && Bitmat.transitions m
         = Array.fold_left
             (fun acc b -> acc + Bitvec.transitions (Bitmat.column m b))
             0
             (Array.init 16 Fun.id))

let () =
  Alcotest.run "bitutil"
    [
      ( "bitvec",
        [
          Alcotest.test_case "empty" `Quick test_create_empty;
          Alcotest.test_case "zeroed" `Quick test_create_zeroed;
          Alcotest.test_case "set/get" `Quick test_set_get;
          Alcotest.test_case "bounds" `Quick test_out_of_range;
          Alcotest.test_case "string roundtrip" `Quick test_string_roundtrip;
          Alcotest.test_case "string orientation" `Quick test_string_orientation;
          Alcotest.test_case "of_int" `Quick test_of_int;
          Alcotest.test_case "of_int too wide" `Quick test_of_int_too_wide;
          Alcotest.test_case "transitions" `Quick test_transitions_examples;
          Alcotest.test_case "popcount/hamming" `Quick test_popcount_hamming;
          Alcotest.test_case "append/sub" `Quick test_append_sub;
          Alcotest.test_case "map2/lnot" `Quick test_map2_lnot;
        ] );
      ( "bitmat",
        [
          Alcotest.test_case "columns" `Quick test_bitmat_columns;
          Alcotest.test_case "roundtrip" `Quick test_bitmat_roundtrip;
          Alcotest.test_case "transitions" `Quick test_bitmat_transitions;
          Alcotest.test_case "width check" `Quick test_bitmat_width_check;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_string_roundtrip;
            prop_transitions_bound;
            prop_hamming_triangle;
            prop_matrix_transitions_consistent;
          ] );
    ]
