module Blockword = Powercode.Blockword
module Boolfun = Powercode.Boolfun

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let word s = Bitutil.Bitvec.to_int (Bitutil.Bitvec.of_string s)

let test_transitions_examples () =
  check_int "010" 2 (Blockword.transitions ~k:3 (word "010"));
  check_int "011" 1 (Blockword.transitions ~k:3 (word "011"));
  check_int "000" 0 (Blockword.transitions ~k:3 (word "000"));
  check_int "10101" 4 (Blockword.transitions ~k:5 (word "10101"))

let test_transitions_closed_form () =
  (* sum over all k-bit words = (k-1) * 2^(k-1) *)
  List.iter
    (fun k ->
      let sum = ref 0 in
      for w = 0 to (1 lsl k) - 1 do
        sum := !sum + Blockword.transitions ~k w
      done;
      check_int (Printf.sprintf "k=%d" k) ((k - 1) * (1 lsl (k - 1))) !sum)
    [ 2; 3; 4; 5; 6; 7; 8 ]

(* The paper's worked example (§5.1): 010 maps to 000 via !y. *)
let test_paper_example_010 () =
  let mask = Blockword.tau_mask_standalone ~k:3 ~word:(word "010") ~code:(word "000") in
  check_bool "!y consistent" true (Boolfun.mask_mem Boolfun.not_history mask);
  check_bool "identity not consistent" false
    (Boolfun.mask_mem Boolfun.identity mask)

(* The paper's contradiction example: 011 cannot map to 111. *)
let test_paper_example_011 () =
  check_int "111 infeasible for 011" 0
    (Blockword.tau_mask_standalone ~k:3 ~word:(word "011") ~code:(word "111"));
  (* but identity maps it to itself *)
  let self = Blockword.tau_mask_standalone ~k:3 ~word:(word "011") ~code:(word "011") in
  check_bool "identity works" true (Boolfun.mask_mem Boolfun.identity self)

(* Figure 4 row: 01001 -> 00111 via NOR, and only NOR. *)
let test_paper_fig4_nor_row () =
  let mask =
    Blockword.tau_mask_standalone ~k:5 ~word:(word "01001") ~code:(word "00111")
  in
  check_int "exactly nor" (Boolfun.mask_of_list [ Boolfun.nor ]) mask

(* Figure 4 row: 00101 -> 01111 via XOR. *)
let test_paper_fig4_xor_row () =
  let mask =
    Blockword.tau_mask_standalone ~k:5 ~word:(word "00101") ~code:(word "01111")
  in
  check_bool "xor consistent" true (Boolfun.mask_mem Boolfun.xor mask)

let test_first_bit_passthrough () =
  (* standalone mask is empty whenever first bits differ *)
  check_int "first bit differs" 0
    (Blockword.tau_mask_standalone ~k:3 ~word:(word "010") ~code:(word "001"))

let test_identity_always_feasible () =
  for k = 1 to 8 do
    for w = 0 to (1 lsl k) - 1 do
      let mask = Blockword.tau_mask_standalone ~k ~word:w ~code:w in
      if not (Boolfun.mask_mem Boolfun.identity mask) then
        Alcotest.failf "identity infeasible for k=%d w=%d" k w
    done
  done

let test_decode_matches_mask () =
  (* if tau is in the mask, decode really does restore the word *)
  let k = 5 in
  for word = 0 to (1 lsl k) - 1 do
    for code = 0 to (1 lsl k) - 1 do
      let mask = Blockword.tau_mask ~k ~word ~code in
      List.iter
        (fun tau ->
          let got =
            Blockword.decode ~k ~tau ~code ~seed_original:(word land 1 = 1)
          in
          if got <> word then
            Alcotest.failf "decode mismatch k=%d w=%d c=%d tau=%s" k word code
              (Boolfun.name tau))
        (Boolfun.list_of_mask mask)
    done
  done

let test_decode_chained_seed () =
  (* chained: the overlap bit's original value is the seed even when the
     stored bit differs *)
  let k = 3 in
  let code = word "110" in
  (* stored overlap bit = 0 *)
  let tau = Boolfun.xor in
  (* x1 = code1 xor code0 = 1 xor 0 = 1; x2 = code2 xor x1 = 1 xor 1 = 0 *)
  let decoded = Blockword.decode ~k ~tau ~code ~seed_original:true in
  check_int "chained decode" (word "011") decoded

let test_codewords_sorted () =
  List.iter
    (fun k ->
      let ws = Blockword.codewords_by_transitions k in
      check_int "complete" (1 lsl k) (Array.length ws);
      let ok = ref true in
      for i = 0 to Array.length ws - 2 do
        let ta = Blockword.transitions ~k ws.(i)
        and tb = Blockword.transitions ~k ws.(i + 1) in
        if ta > tb then ok := false
      done;
      check_bool "sorted by transitions" true !ok)
    [ 2; 4; 7 ]

let prop_mask_decode_agree =
  QCheck.Test.make ~name:"mask membership iff decode restores" ~count:500
    QCheck.(triple (int_bound 63) (int_bound 63) (int_bound 15))
    (fun (w, c, ti) ->
      let k = 6 in
      let tau = Boolfun.of_index ti in
      let in_mask = Boolfun.mask_mem tau (Blockword.tau_mask ~k ~word:w ~code:c) in
      let decodes =
        Blockword.decode ~k ~tau ~code:c ~seed_original:(w land 1 = 1) = w
      in
      in_mask = decodes)

let () =
  Alcotest.run "blockword"
    [
      ( "transitions",
        [
          Alcotest.test_case "examples" `Quick test_transitions_examples;
          Alcotest.test_case "closed form" `Quick test_transitions_closed_form;
        ] );
      ( "paper examples",
        [
          Alcotest.test_case "010 -> 000 via !y" `Quick test_paper_example_010;
          Alcotest.test_case "011 -/-> 111" `Quick test_paper_example_011;
          Alcotest.test_case "fig4 nor row" `Quick test_paper_fig4_nor_row;
          Alcotest.test_case "fig4 xor row" `Quick test_paper_fig4_xor_row;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "first-bit passthrough" `Quick
            test_first_bit_passthrough;
          Alcotest.test_case "identity always feasible" `Quick
            test_identity_always_feasible;
          Alcotest.test_case "decode matches mask (k=5 exhaustive)" `Quick
            test_decode_matches_mask;
          Alcotest.test_case "chained seed" `Quick test_decode_chained_seed;
          Alcotest.test_case "codewords sorted" `Quick test_codewords_sorted;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_mask_decode_agree ] );
    ]
