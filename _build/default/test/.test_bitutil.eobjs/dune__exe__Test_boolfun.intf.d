test/test_boolfun.mli:
