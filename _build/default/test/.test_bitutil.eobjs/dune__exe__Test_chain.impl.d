test/test_chain.ml: Alcotest Array Bitutil Gen List Powercode Printf QCheck QCheck_alcotest
