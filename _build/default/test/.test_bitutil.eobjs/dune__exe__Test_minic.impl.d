test/test_minic.ml: Alcotest List Machine Minic Printf
