test/test_machine.ml: Alcotest Array Float Isa List Machine
