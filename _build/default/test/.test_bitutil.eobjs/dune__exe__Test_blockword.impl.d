test/test_blockword.ml: Alcotest Array Bitutil List Powercode Printf QCheck QCheck_alcotest
