test/test_subset.mli:
