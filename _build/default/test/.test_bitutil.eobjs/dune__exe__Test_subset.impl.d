test/test_subset.ml: Alcotest List Powercode Printf String
