test/test_program_encoder.ml: Alcotest Array Bitutil List Powercode Printf QCheck QCheck_alcotest
