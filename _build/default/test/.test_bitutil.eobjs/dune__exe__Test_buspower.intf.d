test/test_buspower.mli:
