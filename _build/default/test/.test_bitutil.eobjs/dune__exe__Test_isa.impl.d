test/test_isa.ml: Alcotest Array Isa List Minic QCheck QCheck_alcotest String Workloads
