test/test_blockword.mli:
