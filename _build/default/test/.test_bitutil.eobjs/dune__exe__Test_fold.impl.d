test/test_fold.ml: Alcotest Int32 Isa List Machine Minic Printf QCheck QCheck_alcotest String Workloads
