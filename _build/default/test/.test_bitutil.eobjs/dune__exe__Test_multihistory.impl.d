test/test_multihistory.ml: Alcotest List Powercode Printf
