test/test_hardware.ml: Alcotest Array Bitutil Cfg Gen Hardware Isa List Machine Powercode QCheck QCheck_alcotest String
