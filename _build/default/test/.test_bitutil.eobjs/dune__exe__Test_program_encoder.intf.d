test/test_program_encoder.mli:
