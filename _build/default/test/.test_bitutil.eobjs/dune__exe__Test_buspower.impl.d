test/test_buspower.ml: Alcotest Array Bitutil Buspower Format Gen List QCheck QCheck_alcotest String
