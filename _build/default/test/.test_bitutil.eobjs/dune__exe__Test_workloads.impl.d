test/test_workloads.ml: Alcotest Array Cfg Float Int32 Isa List Machine Minic Option Printexc String Workloads
