test/test_integration.ml: Alcotest Array Bitutil Buspower Cfg Hardware Isa List Machine Minic Powercode
