test/test_solver.ml: Alcotest Array Bitutil List Powercode Printf QCheck QCheck_alcotest
