test/test_pipeline.ml: Alcotest Float List Machine Minic Pipeline Powercode Printf Workloads
