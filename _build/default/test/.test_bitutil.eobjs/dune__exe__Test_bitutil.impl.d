test/test_bitutil.ml: Alcotest Array Bitutil Fun Gen List QCheck QCheck_alcotest
