test/test_boolfun.ml: Alcotest Int List Powercode QCheck QCheck_alcotest String
