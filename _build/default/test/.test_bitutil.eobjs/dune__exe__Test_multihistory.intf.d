test/test_multihistory.mli:
