(* Cross-layer integration: Minic source -> compiled program -> profile ->
   encoding plan -> hardware tables -> decoded execution, checked for exact
   architectural equivalence with the baseline run. *)

module PE = Powercode.Program_encoder
module Subset = Powercode.Subset

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let build_system ?(k = 5) source =
  let compiled = Minic.Compile.compile source in
  let program = compiled.Minic.Compile.program in
  let words = Isa.Program.words program in
  let blocks = Cfg.Block.partition (Isa.Program.insns program) in
  let profile, _ = Cfg.Profile.collect program in
  let candidates =
    Array.to_list blocks
    |> List.filter (fun b -> Cfg.Profile.block_weight profile b > 0)
    |> List.map (fun (b : Cfg.Block.t) ->
           {
             PE.start_index = b.Cfg.Block.start;
             body =
               Bitutil.Bitmat.of_words ~width:32
                 (Array.sub words b.Cfg.Block.start b.Cfg.Block.len);
             weight = Cfg.Profile.block_weight profile b;
           })
  in
  let config =
    { PE.k; subset_mask = Subset.paper_eight_mask; tt_capacity = 16;
      optimal_chain = false }
  in
  let plan = PE.plan config candidates in
  (program, Hardware.Reprogram.build program plan, plan)

let fir_source =
  {|
    float x[64];
    float h[8];
    float y[64];
    int main() {
      int i; int j; float acc;
      for (i = 0; i < 64; i = i + 1) { x[i] = itof(i % 9) - 4.0; }
      for (i = 0; i < 8; i = i + 1) { h[i] = 1.0 / itof(i + 1); }
      for (i = 7; i < 64; i = i + 1) {
        acc = 0.0;
        for (j = 0; j < 8; j = j + 1) {
          acc = acc + h[j] * x[i - j];
        }
        y[i] = acc;
      }
      print_float(y[63]);
      print_char(10);
      return 0;
    }
  |}

(* Run the program twice: plain, and through the fetch decoder, comparing
   every decoded word and the final observable behaviour. *)
let test_decoded_run_equivalent () =
  List.iter
    (fun k ->
      let program, system, _ = build_system ~k fir_source in
      let words = Isa.Program.words program in
      (* plain run *)
      let s1 = Machine.Cpu.create_state () in
      let r1 = Machine.Cpu.run program s1 in
      (* decoded run *)
      let dec = Hardware.Reprogram.decoder system in
      let s2 = Machine.Cpu.create_state () in
      let on_fetch ~pc =
        let _bus, decoded = Hardware.Fetch_decoder.fetch dec ~pc in
        if decoded <> words.(pc) then
          Alcotest.failf "k=%d pc=%d decode mismatch" k pc
      in
      let r2 = Machine.Cpu.run ~on_fetch program s2 in
      check_int "same instruction count" r1.Machine.Cpu.instructions
        r2.Machine.Cpu.instructions;
      check_int "same exit" r1.Machine.Cpu.exit_code r2.Machine.Cpu.exit_code;
      check_string "same output" (Machine.Cpu.output s1) (Machine.Cpu.output s2))
    [ 2; 4; 5; 7 ]

let test_fir_saves_transitions () =
  let program, system, _ = build_system ~k:5 fir_source in
  let words = Isa.Program.words program in
  let base = Buspower.Buscount.create () in
  let enc = Buspower.Buscount.create () in
  let s = Machine.Cpu.create_state () in
  let on_fetch ~pc =
    Buspower.Buscount.observe base words.(pc);
    Buspower.Buscount.observe enc system.Hardware.Reprogram.image.(pc)
  in
  let _ = Machine.Cpu.run ~on_fetch program s in
  let b = Buspower.Buscount.total base and e = Buspower.Buscount.total enc in
  check_bool "saves transitions" true (e < b);
  check_bool "saves a lot (>10%)" true
    (float_of_int e < 0.9 *. float_of_int b)

let test_plan_image_only_touches_encoded_blocks () =
  let program, system, plan = build_system fir_source in
  let words = Isa.Program.words program in
  let image = system.Hardware.Reprogram.image in
  let inside pc =
    List.exists
      (fun p ->
        match p.PE.encoding with
        | None -> false
        | Some enc ->
            let start = p.PE.cand.PE.start_index in
            pc >= start
            && pc < start + Bitutil.Bitmat.rows enc.PE.encoded)
      plan.PE.placements
  in
  Array.iteri
    (fun pc w ->
      if not (inside pc) && image.(pc) <> w then
        Alcotest.failf "image changed outside encoded blocks at %d" pc)
    words

let test_heads_stored_verbatim () =
  let program, system, plan = build_system fir_source in
  let words = Isa.Program.words program in
  List.iter
    (fun p ->
      if p.PE.encoding <> None then
        let start = p.PE.cand.PE.start_index in
        check_int "head verbatim" words.(start)
          system.Hardware.Reprogram.image.(start))
    plan.PE.placements

(* A multi-function program keeps working when its functions interleave with
   encoded loops (calls leave and re-enter encoded regions). *)
let test_calls_across_encoded_regions () =
  let src =
    {|
      int helper(int x) {
        int acc; int i;
        acc = 0;
        for (i = 0; i < x; i = i + 1) { acc = acc + i * i; }
        return acc;
      }
      int main() {
        int total; int round;
        total = 0;
        for (round = 0; round < 10; round = round + 1) {
          total = total + helper(round);
        }
        print_int(total);
        return 0;
      }
    |}
  in
  let program, system, _ = build_system ~k:4 src in
  let words = Isa.Program.words program in
  let dec = Hardware.Reprogram.decoder system in
  let state = Machine.Cpu.create_state () in
  let on_fetch ~pc =
    let _bus, decoded = Hardware.Fetch_decoder.fetch dec ~pc in
    if decoded <> words.(pc) then Alcotest.failf "pc=%d mismatch" pc
  in
  let _ = Machine.Cpu.run ~on_fetch program state in
  check_string "result" "540" (Machine.Cpu.output state)

(* The software-reference decoder (Program_encoder.decode_block) and the
   hardware model must agree block by block. *)
let test_reference_and_hardware_agree () =
  let program, system, plan = build_system ~k:6 fir_source in
  ignore program;
  List.iter
    (fun p ->
      match p.PE.encoding with
      | None -> ()
      | Some enc ->
          let reference =
            PE.decode_block ~k:6 ~entries:enc.PE.entries enc.PE.encoded
          in
          let start = p.PE.cand.PE.start_index in
          let rows = Bitutil.Bitmat.rows enc.PE.encoded in
          let dec = Hardware.Reprogram.decoder system in
          for i = 0 to rows - 1 do
            let _bus, decoded = Hardware.Fetch_decoder.fetch dec ~pc:(start + i) in
            if decoded <> Bitutil.Bitmat.word reference i then
              Alcotest.failf "reference/hardware disagree at row %d" i
          done)
    plan.PE.placements

let () =
  Alcotest.run "integration"
    [
      ( "equivalence",
        [
          Alcotest.test_case "decoded run equivalent" `Quick
            test_decoded_run_equivalent;
          Alcotest.test_case "fir saves transitions" `Quick
            test_fir_saves_transitions;
          Alcotest.test_case "image patch locality" `Quick
            test_plan_image_only_touches_encoded_blocks;
          Alcotest.test_case "heads verbatim" `Quick test_heads_stored_verbatim;
          Alcotest.test_case "calls across regions" `Quick
            test_calls_across_encoded_regions;
          Alcotest.test_case "reference = hardware" `Quick
            test_reference_and_hardware_agree;
        ] );
    ]
