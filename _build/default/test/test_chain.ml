module Chain = Powercode.Chain
module Subset = Powercode.Subset
module Bitvec = Bitutil.Bitvec

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let stream_of_string = Bitvec.of_string

let seeded_stream seed n =
  let state = ref seed in
  Bitvec.init n (fun _ ->
      (* xorshift, deterministic across runs *)
      state := !state lxor (!state lsl 13);
      state := !state lxor (!state lsr 7);
      state := !state lxor (!state lsl 17);
      !state land 1 = 1)

let test_block_count () =
  check_int "n=0" 0 (Chain.block_count ~n:0 ~k:5);
  check_int "n=1" 1 (Chain.block_count ~n:1 ~k:5);
  check_int "n=5" 1 (Chain.block_count ~n:5 ~k:5);
  check_int "n=6" 2 (Chain.block_count ~n:6 ~k:5);
  check_int "n=9" 2 (Chain.block_count ~n:9 ~k:5);
  check_int "n=10" 3 (Chain.block_count ~n:10 ~k:5);
  check_int "n=1000 k=5" (1 + ((1000 - 5 + 3) / 4)) (Chain.block_count ~n:1000 ~k:5)

let test_empty_stream () =
  let e = Chain.encode_greedy ~k:4 (Bitvec.create 0) in
  check_int "no taus" 0 (Array.length e.Chain.taus);
  check_bool "decodes to empty" true (Bitvec.equal (Chain.decode e) (Bitvec.create 0))

let test_single_bit () =
  let s = stream_of_string "1" in
  let e = Chain.encode_greedy ~k:4 s in
  check_bool "roundtrip" true (Bitvec.equal (Chain.decode e) s);
  check_bool "stored verbatim" true (Bitvec.equal e.Chain.code s)

let test_alternating_collapses () =
  (* the motivating example: 1010... encodes with zero transitions after the
     first block boundary effects; at minimum it beats the original hugely *)
  let s = Bitvec.init 41 (fun i -> i land 1 = 0) in
  let e = Chain.encode_greedy ~k:5 s in
  check_bool "roundtrip" true (Bitvec.equal (Chain.decode e) s);
  check_bool "big win" true
    (Bitvec.transitions e.Chain.code <= Bitvec.transitions s / 4)

let test_constant_stays () =
  let s = Bitvec.init 37 (fun _ -> true) in
  let e = Chain.encode_greedy ~k:6 s in
  check_int "still zero transitions" 0 (Bitvec.transitions e.Chain.code);
  check_bool "roundtrip" true (Bitvec.equal (Chain.decode e) s)

let test_never_worse_than_original () =
  for seed = 1 to 30 do
    let s = seeded_stream seed 200 in
    List.iter
      (fun k ->
        let e = Chain.encode_greedy ~k s in
        if Bitvec.transitions e.Chain.code > Bitvec.transitions s then
          Alcotest.failf "worse than original: seed=%d k=%d" seed k)
      [ 2; 3; 4; 5; 6; 7 ]
  done

let test_optimal_at_least_greedy () =
  for seed = 1 to 20 do
    let s = seeded_stream (seed * 7919) 150 in
    List.iter
      (fun k ->
        let g = Chain.encode_greedy ~k s in
        let o = Chain.encode_optimal ~k s in
        let tg = Bitvec.transitions g.Chain.code in
        let to_ = Bitvec.transitions o.Chain.code in
        if to_ > tg then Alcotest.failf "DP worse than greedy: seed=%d k=%d" seed k;
        if not (Bitvec.equal (Chain.decode o) s) then
          Alcotest.failf "DP decode failed: seed=%d k=%d" seed k)
      [ 2; 4; 5; 7 ]
  done

(* §6 of the paper: random 1000-bit streams, k = 5, reduction within ~1% of
   50%.  Averaged over seeds to keep the tolerance honest. *)
let test_paper_sec6_fifty_percent () =
  let trials = 25 in
  let sum = ref 0.0 in
  for seed = 1 to trials do
    let s = seeded_stream (seed * 104729) 1000 in
    let e = Chain.encode_greedy ~k:5 s in
    let t0 = float_of_int (Bitvec.transitions s) in
    let t1 = float_of_int (Bitvec.transitions e.Chain.code) in
    sum := !sum +. (100.0 *. (1.0 -. (t1 /. t0)))
  done;
  let avg = !sum /. float_of_int trials in
  if avg < 48.0 || avg > 52.5 then
    Alcotest.failf "average reduction %.2f%% outside 48..52.5" avg

let test_subset_roundtrip () =
  for seed = 1 to 10 do
    let s = seeded_stream (seed * 31) 100 in
    List.iter
      (fun k ->
        let e = Chain.encode_greedy ~subset_mask:Subset.paper_eight_mask ~k s in
        if not (Bitvec.equal (Chain.decode e) s) then
          Alcotest.failf "subset roundtrip failed seed=%d k=%d" seed k;
        (* all chosen transformations really are in the subset *)
        Array.iter
          (fun tau ->
            if not (Powercode.Boolfun.mask_mem tau Subset.paper_eight_mask)
            then Alcotest.failf "tau outside subset seed=%d k=%d" seed k)
          e.Chain.taus)
      [ 3; 5; 7 ]
  done

let test_tau_count_matches_blocks () =
  let s = seeded_stream 42 77 in
  List.iter
    (fun k ->
      let e = Chain.encode_greedy ~k s in
      check_int
        (Printf.sprintf "k=%d" k)
        (Chain.block_count ~n:77 ~k)
        (Array.length e.Chain.taus))
    [ 2; 3; 4; 5; 6; 7 ]

let test_first_bit_verbatim () =
  for seed = 5 to 15 do
    let s = seeded_stream seed 64 in
    let e = Chain.encode_greedy ~k:5 s in
    check_bool "first bit passes through" true
      (Bitvec.get e.Chain.code 0 = Bitvec.get s 0)
  done

let test_bad_k_rejected () =
  Alcotest.check_raises "k=1" (Invalid_argument "Chain: block size not in 2..16")
    (fun () -> ignore (Chain.encode_greedy ~k:1 (Bitvec.create 8)));
  Alcotest.check_raises "k=17" (Invalid_argument "Chain: block size not in 2..16")
    (fun () -> ignore (Chain.encode_greedy ~k:17 (Bitvec.create 8)))

(* cross-validation: a stream of exactly k bits is a single standalone
   block, so the chain encoder must achieve exactly the solver's optimum *)
let test_single_block_matches_solver () =
  List.iter
    (fun k ->
      for word = 0 to (1 lsl k) - 1 do
        let stream = Bitvec.of_int ~width:k word in
        let e = Chain.encode_greedy ~k stream in
        let entry = Powercode.Solver.solve ~k word in
        let chain_cost = Bitvec.transitions e.Chain.code in
        if chain_cost <> entry.Powercode.Solver.code_transitions then
          Alcotest.failf "k=%d w=%d: chain %d <> solver %d" k word chain_cost
            entry.Powercode.Solver.code_transitions
      done)
    [ 2; 3; 5; 7 ]

let prop_roundtrip =
  QCheck.Test.make ~name:"greedy encode/decode roundtrip" ~count:300
    QCheck.(pair (int_range 2 8) (list_of_size Gen.(0 -- 80) bool))
    (fun (k, bits) ->
      let s = Bitvec.of_list bits in
      let e = Chain.encode_greedy ~k s in
      Bitvec.equal (Chain.decode e) s)

let prop_roundtrip_optimal =
  QCheck.Test.make ~name:"optimal encode/decode roundtrip" ~count:200
    QCheck.(pair (int_range 2 8) (list_of_size Gen.(0 -- 60) bool))
    (fun (k, bits) ->
      let s = Bitvec.of_list bits in
      let e = Chain.encode_optimal ~k s in
      Bitvec.equal (Chain.decode e) s)

let prop_savings_accounting =
  QCheck.Test.make ~name:"transitions_saved accounting" ~count:100
    QCheck.(list_of_size Gen.(2 -- 60) bool)
    (fun bits ->
      let s = Bitvec.of_list bits in
      let e = Chain.encode_greedy ~k:5 s in
      Chain.transitions_saved ~original:s ~encoded:e
      = Bitvec.transitions s - Bitvec.transitions e.Chain.code)

let () =
  Alcotest.run "chain"
    [
      ( "structure",
        [
          Alcotest.test_case "block_count" `Quick test_block_count;
          Alcotest.test_case "empty" `Quick test_empty_stream;
          Alcotest.test_case "single bit" `Quick test_single_bit;
          Alcotest.test_case "tau count" `Quick test_tau_count_matches_blocks;
          Alcotest.test_case "first bit verbatim" `Quick test_first_bit_verbatim;
          Alcotest.test_case "bad k" `Quick test_bad_k_rejected;
        ] );
      ( "quality",
        [
          Alcotest.test_case "alternating collapses" `Quick
            test_alternating_collapses;
          Alcotest.test_case "constant stays" `Quick test_constant_stays;
          Alcotest.test_case "never worse" `Quick test_never_worse_than_original;
          Alcotest.test_case "optimal >= greedy" `Quick
            test_optimal_at_least_greedy;
          Alcotest.test_case "paper sec6: ~50% on random streams" `Quick
            test_paper_sec6_fifty_percent;
          Alcotest.test_case "subset roundtrip" `Quick test_subset_roundtrip;
          Alcotest.test_case "single block = solver optimum" `Quick
            test_single_block_matches_solver;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_roundtrip; prop_roundtrip_optimal; prop_savings_accounting ] );
    ]
