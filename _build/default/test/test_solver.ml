module Solver = Powercode.Solver
module Subset = Powercode.Subset
module Boolfun = Powercode.Boolfun

let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let word s = Bitutil.Bitvec.to_int (Bitutil.Bitvec.of_string s)
let render ~k w = Bitutil.Bitvec.to_string (Bitutil.Bitvec.of_int ~width:k w)

(* Figure 2 of the paper, verbatim: optimal codes for k = 3.  Every row is
   deterministic (no cost ties among feasible codes for these words with our
   scan order), so codes and transformations are asserted exactly. *)
let figure2 =
  [
    ("000", "000", "x", 0, 0);
    ("001", "111", "!x", 1, 0);
    ("010", "000", "!y", 2, 0);
    ("011", "011", "x", 1, 1);
    ("100", "100", "x", 1, 1);
    ("101", "111", "!y", 2, 0);
    ("110", "000", "!x", 1, 0);
    ("111", "111", "x", 0, 0);
  ]

let test_figure2 () =
  List.iter
    (fun (x, code, tau, tx, tc) ->
      let e = Solver.solve ~k:3 (word x) in
      check_string (x ^ " code") code (render ~k:3 e.Solver.code);
      check_string (x ^ " tau") tau (Boolfun.name e.Solver.tau);
      check_int (x ^ " Tx") tx e.Solver.word_transitions;
      check_int (x ^ " Tc") tc e.Solver.code_transitions)
    figure2

(* Figure 3 of the paper: TTN / RTN / improvement for k = 2..7.  The paper's
   k = 6 row is printed doubled (320/180) — the consistent values are
   160/90 with the same 43.8% — and its k = 7 RTN of 234 is 2 below the
   provable optimum of 236 (38.5% vs the printed 39.1%).  Both deviations
   are documented in EXPERIMENTS.md; the values asserted here are the ones
   our exhaustive solver proves optimal. *)
let figure3 =
  [
    (2, 2, 0, 100.0);
    (3, 8, 2, 75.0);
    (4, 24, 10, 58.3);
    (5, 64, 32, 50.0);
    (6, 160, 90, 43.8);
    (7, 384, 236, 38.5);
  ]

let test_figure3 () =
  List.iter
    (fun (k, ttn, rtn, pct) ->
      let t = Solver.totals ~k () in
      check_int (Printf.sprintf "k=%d TTN" k) ttn t.Solver.ttn;
      check_int (Printf.sprintf "k=%d RTN" k) rtn t.Solver.rtn;
      Alcotest.(check (float 0.05))
        (Printf.sprintf "k=%d pct" k)
        pct t.Solver.improvement_pct)
    figure3

(* Figure 4: k = 5 restricted to the eight transformations.  Optimal codes
   are not unique; ties make some of the paper's rows one of several
   equal-cost choices.  The transition columns are tie-invariant and are
   asserted verbatim for the printed half-table. *)
let figure4_transitions =
  [
    ("00000", 0, 0); ("00001", 1, 0); ("00010", 2, 1); ("00011", 1, 1);
    ("00100", 2, 2); ("00101", 3, 1); ("00110", 2, 1); ("00111", 1, 1);
    ("01000", 2, 1); ("01001", 3, 1); ("01010", 4, 0); ("01011", 3, 1);
    ("01100", 2, 2); ("01101", 3, 2); ("01110", 2, 1); ("01111", 1, 1);
  ]

let test_figure4_transitions () =
  List.iter
    (fun (x, tx, tc) ->
      let e = Solver.solve ~subset_mask:Subset.paper_eight_mask ~k:5 (word x) in
      check_int (x ^ " Tx") tx e.Solver.word_transitions;
      check_int (x ^ " Tc") tc e.Solver.code_transitions)
    figure4_transitions

(* Unique-cost rows of Figure 4 asserted exactly. *)
let test_figure4_exact_rows () =
  let e = Solver.solve ~subset_mask:Subset.paper_eight_mask ~k:5 (word "01010") in
  check_string "01010 code" "00000" (render ~k:5 e.Solver.code);
  check_string "01010 tau" "!y" (Boolfun.name e.Solver.tau);
  let e = Solver.solve ~subset_mask:Subset.paper_eight_mask ~k:5 (word "00001") in
  check_string "00001 code" "11111" (render ~k:5 e.Solver.code);
  check_string "00001 tau" "!x" (Boolfun.name e.Solver.tau)

(* Figure 4's stated symmetry: complementing every bit of X and X~ yields a
   valid solution whose transformation is the dual (XOR<->XNOR, NOR<->NAND,
   identity/inversion fixed).  Check constructively: the complement of each
   solved code maps the complement word under the dual of some consistent
   transformation. *)
let test_fig4_duality_constructive () =
  let k = 5 in
  let mask_bits = (1 lsl k) - 1 in
  Array.iter
    (fun (e : Solver.entry) ->
      let word' = lnot e.Solver.word land mask_bits in
      let code' = lnot e.Solver.code land mask_bits in
      let mask' =
        Powercode.Blockword.tau_mask_standalone ~k ~word:word' ~code:code'
      in
      if not (Boolfun.mask_mem (Boolfun.dual e.Solver.tau) mask') then
        Alcotest.failf "duality fails for word %d" e.Solver.word)
    (Solver.table ~subset_mask:Subset.paper_eight_mask ~k ())

(* The paper's symmetry: solving the complement of a word yields a code
   whose transitions equal the original's code transitions. *)
let test_complement_symmetry () =
  List.iter
    (fun k ->
      let mask = (1 lsl k) - 1 in
      for w = 0 to mask do
        let a = Solver.solve ~k w in
        let b = Solver.solve ~k (lnot w land mask) in
        if a.Solver.code_transitions <> b.Solver.code_transitions then
          Alcotest.failf "asymmetry at k=%d w=%d" k w
      done)
    [ 3; 5; 6 ]

let test_identity_bound () =
  (* the code never has more transitions than the original *)
  List.iter
    (fun k ->
      Array.iter
        (fun (e : Solver.entry) ->
          if e.Solver.code_transitions > e.Solver.word_transitions then
            Alcotest.failf "worse than identity at k=%d w=%d" k e.Solver.word)
        (Solver.table ~k ()))
    [ 2; 3; 4; 5; 6; 7 ]

let test_chosen_tau_in_mask () =
  Array.iter
    (fun (e : Solver.entry) ->
      if not (Boolfun.mask_mem e.Solver.tau e.Solver.tau_mask) then
        Alcotest.failf "tau not in mask for w=%d" e.Solver.word)
    (Solver.table ~k:6 ())

let test_solution_decodes () =
  (* every table entry decodes back to its word *)
  List.iter
    (fun k ->
      Array.iter
        (fun (e : Solver.entry) ->
          let got =
            Powercode.Blockword.decode ~k ~tau:e.Solver.tau ~code:e.Solver.code
              ~seed_original:(e.Solver.word land 1 = 1)
          in
          if got <> e.Solver.word then
            Alcotest.failf "decode failed k=%d w=%d" k e.Solver.word)
        (Solver.table ~k ()))
    [ 2; 3; 4; 5; 6; 7 ]

let test_subset_without_identity_rejected () =
  Alcotest.check_raises "identity mandatory"
    (Invalid_argument "Solver: subset must contain the identity transformation")
    (fun () ->
      ignore
        (Solver.solve ~subset_mask:(Boolfun.mask_of_list [ Boolfun.xor ]) ~k:3 0))

let prop_restricting_never_improves =
  QCheck.Test.make ~name:"restricted solve never beats unrestricted" ~count:100
    QCheck.(int_bound 127)
    (fun w ->
      let full = Solver.solve ~k:7 w in
      let sub = Solver.solve ~subset_mask:Subset.paper_eight_mask ~k:7 w in
      sub.Solver.code_transitions >= full.Solver.code_transitions)

let () =
  Alcotest.run "solver"
    [
      ( "paper tables",
        [
          Alcotest.test_case "figure 2 verbatim" `Quick test_figure2;
          Alcotest.test_case "figure 3 totals" `Quick test_figure3;
          Alcotest.test_case "figure 4 transitions" `Quick
            test_figure4_transitions;
          Alcotest.test_case "figure 4 exact rows" `Quick
            test_figure4_exact_rows;
          Alcotest.test_case "figure 4 duality" `Quick
            test_fig4_duality_constructive;
        ] );
      ( "invariants",
        [
          Alcotest.test_case "complement symmetry" `Quick
            test_complement_symmetry;
          Alcotest.test_case "identity bound" `Quick test_identity_bound;
          Alcotest.test_case "tau in mask" `Quick test_chosen_tau_in_mask;
          Alcotest.test_case "solutions decode" `Quick test_solution_decodes;
          Alcotest.test_case "identity mandatory" `Quick
            test_subset_without_identity_rejected;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest [ prop_restricting_never_improves ]
      );
    ]
