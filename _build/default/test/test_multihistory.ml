module M = Powercode.Multihistory
module Solver = Powercode.Solver

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* h = 1 must coincide exactly with the main solver *)
let test_h1_matches_solver () =
  List.iter
    (fun k ->
      let t1 = M.totals ~h:1 ~k in
      let t = Solver.totals ~k () in
      check_int (Printf.sprintf "k=%d ttn" k) t.Solver.ttn t1.M.ttn;
      check_int (Printf.sprintf "k=%d rtn" k) t.Solver.rtn t1.M.rtn)
    [ 2; 3; 4; 5; 6; 7 ]

let test_h1_per_word_matches_solver () =
  let k = 6 in
  for word = 0 to (1 lsl k) - 1 do
    let c1 = M.solve ~h:1 ~k word in
    let e = Solver.solve ~k word in
    check_int "same transitions"
      (Powercode.Blockword.transitions ~k e.Solver.code)
      (Powercode.Blockword.transitions ~k c1)
  done

let test_h2_at_least_h1 () =
  List.iter
    (fun k ->
      let t1 = M.totals ~h:1 ~k in
      let t2 = M.totals ~h:2 ~k in
      check_bool (Printf.sprintf "k=%d h2 no worse" k) true (t2.M.rtn <= t1.M.rtn))
    [ 2; 3; 4; 5; 6; 7 ]

let test_h3_at_least_h2 () =
  List.iter
    (fun k ->
      let t2 = M.totals ~h:2 ~k in
      let t3 = M.totals ~h:3 ~k in
      check_bool (Printf.sprintf "k=%d h3 no worse" k) true (t3.M.rtn <= t2.M.rtn))
    [ 3; 5; 7 ]

let test_roundtrip_all_words () =
  List.iter
    (fun (h, k) ->
      for word = 0 to (1 lsl k) - 1 do
        let code = M.solve ~h ~k word in
        match M.solve_table ~h ~k ~word ~code with
        | None -> Alcotest.failf "h=%d k=%d w=%d: solver returned infeasible code" h k word
        | Some table ->
            let got = M.decode ~h ~k ~table ~code in
            if got <> word then
              Alcotest.failf "h=%d k=%d w=%d: decode %d" h k word got
      done)
    [ (1, 5); (2, 5); (2, 7); (3, 6) ]

let test_identity_bound () =
  List.iter
    (fun (h, k) ->
      for word = 0 to (1 lsl k) - 1 do
        let code = M.solve ~h ~k word in
        if
          Powercode.Blockword.transitions ~k code
          > Powercode.Blockword.transitions ~k word
        then Alcotest.failf "worse than identity h=%d k=%d w=%d" h k word
      done)
    [ (2, 6); (3, 5) ]

let test_bad_params () =
  Alcotest.check_raises "h=0" (Invalid_argument "Multihistory: h not in 1..3")
    (fun () -> ignore (M.solve ~h:0 ~k:3 0));
  Alcotest.check_raises "h=4" (Invalid_argument "Multihistory: h not in 1..3")
    (fun () -> ignore (M.solve ~h:4 ~k:3 0))

let test_known_h2_win () =
  (* 01100 needs 2 transitions at h=1 (Figure 4) but h=2 history can see
     further back; verify h=2 strictly improves the k=5 total *)
  let t1 = M.totals ~h:1 ~k:5 in
  let t2 = M.totals ~h:2 ~k:5 in
  check_bool "strict improvement at k=5" true (t2.M.rtn < t1.M.rtn)

let () =
  Alcotest.run "multihistory"
    [
      ( "h=1 equivalence",
        [
          Alcotest.test_case "totals" `Quick test_h1_matches_solver;
          Alcotest.test_case "per word" `Quick test_h1_per_word_matches_solver;
        ] );
      ( "monotonicity",
        [
          Alcotest.test_case "h2 >= h1" `Quick test_h2_at_least_h1;
          Alcotest.test_case "h3 >= h2" `Quick test_h3_at_least_h2;
          Alcotest.test_case "h2 strict at k=5" `Quick test_known_h2_win;
        ] );
      ( "correctness",
        [
          Alcotest.test_case "roundtrip" `Quick test_roundtrip_all_words;
          Alcotest.test_case "identity bound" `Quick test_identity_bound;
          Alcotest.test_case "bad params" `Quick test_bad_params;
        ] );
    ]
