The paper's Figure 2 table through the CLI:

  $ ../bin/powercode_cli.exe tables -k 3
  Optimal power code, k = 3:
    000 -> 000  x       Tx=0 Tc=0
    001 -> 111  !x      Tx=1 Tc=0
    010 -> 000  !y      Tx=2 Tc=0
    011 -> 011  x       Tx=1 Tc=1
    100 -> 100  x       Tx=1 Tc=1
    101 -> 111  !y      Tx=2 Tc=0
    110 -> 000  !x      Tx=1 Tc=0
    111 -> 111  x       Tx=0 Tc=0
  k=3 TTN=8 RTN=2 improvement=75.0%

Hardware cost sheet:

  $ ../bin/powercode_cli.exe cost -k 7 --entries 16
  k=7 TT=16 entries (1600 bits) BBIT=16 entries (320 bits) gates=256 mux=8:1 covers<=97 insns

Minimal subset analysis:

  $ ../bin/powercode_cli.exe subset
  Minimal transformation subsets preserving optimality, k <= 7:
    { !(x|y) !x x^y !(x&y) !(x^y) x }
  The paper's eight:
    { x !x y !y x^y !(x^y) !(x|y) !(x&y) }
    k=2: paper eight optimal: true, minimal six optimal: true
    k=3: paper eight optimal: true, minimal six optimal: true
    k=4: paper eight optimal: true, minimal six optimal: true
    k=5: paper eight optimal: true, minimal six optimal: true
    k=6: paper eight optimal: true, minimal six optimal: true
    k=7: paper eight optimal: true, minimal six optimal: true

Firmware bundle round trip: encode a loop, flash it, decode and run it:

  $ ../bin/powercode_cli.exe encode ../examples/programs/countdown.s -k 4 --firmware out.fw > /dev/null
  $ ../bin/powercode_cli.exe restore out.fw --run
  10
  9
  8
  7
  6
  5
  4
  3
  2
  1
  
  [84 instructions, exit 0]
