module Evaluate = Pipeline.Evaluate
module Subset = Powercode.Subset
module Boolfun = Powercode.Boolfun

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

let scaled name = Workloads.by_name Workloads.scaled name

let test_report_shape () =
  let r = Evaluate.evaluate_workload ~ks:[ 4; 5 ] (scaled "mmul") in
  check_int "two runs" 2 (List.length r.Evaluate.runs);
  Alcotest.(check (list int))
    "ks" [ 4; 5 ]
    (List.map (fun x -> x.Evaluate.k) r.Evaluate.runs);
  check_bool "baseline positive" true (r.Evaluate.baseline_transitions > 0);
  check_bool "instructions positive" true (r.Evaluate.instructions > 0)

let test_verification_covers_every_fetch () =
  let r = Evaluate.evaluate_workload ~ks:[ 4; 6 ] ~verify:true (scaled "tri") in
  List.iter
    (fun run ->
      check_int
        (Printf.sprintf "k=%d verified" run.Evaluate.k)
        r.Evaluate.instructions run.Evaluate.verified_fetches)
    r.Evaluate.runs

let test_reduction_positive_on_loop_kernels () =
  List.iter
    (fun name ->
      let r = Evaluate.evaluate_workload ~ks:[ 4; 5 ] (scaled name) in
      List.iter
        (fun run ->
          check_bool
            (Printf.sprintf "%s k=%d reduces" name run.Evaluate.k)
            true
            (run.Evaluate.reduction_pct > 0.0))
        r.Evaluate.runs)
    [ "mmul"; "sor"; "ej"; "fft"; "tri"; "lu" ]

let test_encoded_never_worse () =
  List.iter
    (fun name ->
      let r = Evaluate.evaluate_workload (scaled name) in
      List.iter
        (fun run ->
          check_bool "no worse than baseline" true
            (run.Evaluate.transitions <= r.Evaluate.baseline_transitions))
        r.Evaluate.runs)
    [ "mmul"; "fft" ]

let test_output_unchanged_by_observation () =
  (* evaluation must not perturb program semantics *)
  let w = scaled "lu" in
  let c = Workloads.compile w in
  let state = Machine.Cpu.create_state () in
  let _ = Machine.Cpu.run c.Minic.Compile.program state in
  let plain = Machine.Cpu.output state in
  let r = Evaluate.evaluate_workload ~verify:true w in
  Alcotest.(check string) "same output" plain r.Evaluate.output

let test_tt_budget_respected () =
  let r = Evaluate.evaluate_workload ~ks:[ 4 ] (scaled "ej") in
  List.iter
    (fun run -> check_bool "within 16" true (run.Evaluate.tt_used <= 16))
    r.Evaluate.runs

let test_identity_only_subset_changes_nothing () =
  let w = scaled "fft" in
  let c = Workloads.compile w in
  let r =
    Evaluate.evaluate ~ks:[ 5 ]
      ~subset_mask:(Boolfun.mask_of_list [ Boolfun.identity ])
      ~name:"fft-id" c.Minic.Compile.program
  in
  match r.Evaluate.runs with
  | [ run ] ->
      check_int "identity encoding saves nothing" r.Evaluate.baseline_transitions
        run.Evaluate.transitions
  | _ -> Alcotest.fail "one run expected"

let test_full_universe_at_least_as_good () =
  let w = scaled "sor" in
  let c = Workloads.compile w in
  let sub =
    Evaluate.evaluate ~ks:[ 5 ] ~subset_mask:Subset.paper_eight_mask
      ~name:"sor8" c.Minic.Compile.program
  in
  let full =
    Evaluate.evaluate ~ks:[ 5 ] ~subset_mask:Boolfun.full_mask ~name:"sor16"
      c.Minic.Compile.program
  in
  match (sub.Evaluate.runs, full.Evaluate.runs) with
  | [ s ], [ f ] ->
      (* greedy chaining is not strictly monotonic in the subset, but the
         full universe should never lose more than a whisker *)
      check_bool "within 2%" true
        (f.Evaluate.reduction_pct >= s.Evaluate.reduction_pct -. 2.0)
  | _ -> Alcotest.fail "one run each"

let test_optimal_chain_at_least_greedy () =
  let w = scaled "tri" in
  let c = Workloads.compile w in
  let g = Evaluate.evaluate ~ks:[ 5 ] ~name:"g" c.Minic.Compile.program in
  let o =
    Evaluate.evaluate ~ks:[ 5 ] ~optimal_chain:true ~name:"o"
      c.Minic.Compile.program
  in
  match (g.Evaluate.runs, o.Evaluate.runs) with
  | [ gr ], [ orun ] ->
      check_bool "optimal static chain not worse dynamically by much" true
        (orun.Evaluate.transitions <= gr.Evaluate.transitions + (gr.Evaluate.transitions / 50))
  | _ -> Alcotest.fail "one run each"

let test_loop_selection_policy () =
  (* the paper's "major application loops" policy: encoding only loop
     blocks must still capture nearly all the savings on loop-dominated
     kernels, and every fetch must still decode correctly *)
  let w = scaled "mmul" in
  let c = Workloads.compile w in
  let blocks_r =
    Evaluate.evaluate ~ks:[ 5 ] ~verify:true ~name:"blocks"
      c.Minic.Compile.program
  in
  let loops_r =
    Evaluate.evaluate ~ks:[ 5 ] ~selection:`Hot_loops ~verify:true
      ~name:"loops" c.Minic.Compile.program
  in
  match (blocks_r.Evaluate.runs, loops_r.Evaluate.runs) with
  | [ b ], [ l ] ->
      check_bool "loop policy close to block policy" true
        (Float.abs (b.Evaluate.reduction_pct -. l.Evaluate.reduction_pct) < 5.0);
      check_int "verified" loops_r.Evaluate.instructions
        l.Evaluate.verified_fetches
  | _ -> Alcotest.fail "one run each"

let test_coverage_bounds () =
  let r = Evaluate.evaluate_workload ~ks:[ 5 ] (scaled "mmul") in
  check_bool "0..100" true
    (r.Evaluate.coverage_pct >= 0.0 && r.Evaluate.coverage_pct <= 100.0);
  check_bool "loops dominate" true (r.Evaluate.coverage_pct > 50.0)

let () =
  Alcotest.run "pipeline"
    [
      ( "evaluate",
        [
          Alcotest.test_case "report shape" `Quick test_report_shape;
          Alcotest.test_case "verification covers fetches" `Quick
            test_verification_covers_every_fetch;
          Alcotest.test_case "reduces on all kernels" `Quick
            test_reduction_positive_on_loop_kernels;
          Alcotest.test_case "never worse" `Quick test_encoded_never_worse;
          Alcotest.test_case "semantics preserved" `Quick
            test_output_unchanged_by_observation;
          Alcotest.test_case "tt budget" `Quick test_tt_budget_respected;
          Alcotest.test_case "coverage bounds" `Quick test_coverage_bounds;
          Alcotest.test_case "loop selection policy" `Quick
            test_loop_selection_policy;
        ] );
      ( "ablation",
        [
          Alcotest.test_case "identity subset" `Quick
            test_identity_only_subset_changes_nothing;
          Alcotest.test_case "full universe" `Quick
            test_full_universe_at_least_as_good;
          Alcotest.test_case "optimal chain" `Quick
            test_optimal_chain_at_least_greedy;
        ] );
    ]
